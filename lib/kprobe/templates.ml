(* Canned probe programs. The three watchdog.* templates are loaded at
   every boot (always-on anomaly detection); the rest are examples
   loadable by name from the CLI (`probe run <wl> --prog <name>`) or
   used as starting points for hand-written programs. Thresholds are
   OCaml parameters so callers can tune the knobs, but each template
   compiles to plain bytecode that must still pass the verifier —
   watchdogs get no privileges the user's own programs lack. *)

(* Hung-task detector: fires when the scheduler observes that some
   runnable task has been waiting for the CPU longer than
   [threshold_ms] virtual milliseconds. The max_wait_ns ctx field is
   computed by the task layer at every switch/wakeup, so a hogging
   task is caught at the next scheduling event. *)
let hung_task ?(threshold_ms = 50) () =
  Printf.sprintf
    {|# always-on watchdog: runnable task starved of CPU
prog watchdog.hung_task
attach sched_switch
attach sched_wakeup
map counter fired
map hist wait_ms
ldctx r0, max_wait_ns
ld r1, %d
jlt r0, r1, +5
div r0, 1000000
hist wait_ms, r0
count fired, 1
emit fired, r0
ret
|}
    (threshold_ms * 1_000_000)

(* Syscall-latency SLO watchdog: per-nr thresholds (read/write get
   tight microsecond budgets, fsync a journal-commit-sized one,
   everything else [default_us]); offenders above budget land in a
   bounded ring of (nr, lat_us) pairs. *)
let syscall_slo ?(read_us = 50) ?(write_us = 100) ?(fsync_us = 20_000) ?(default_us = 1_000) () =
  Printf.sprintf
    {|# always-on watchdog: syscalls above their latency budget
prog watchdog.syscall_slo
attach syscall_exit
map counter over_total
map ring offenders
map perkey over_by_nr
ldctx r0, lat_ns
div r0, 1000
ldctx r1, nr
ld r2, %d
jeq r1, 0, +5
ld r2, %d
jeq r1, 1, +3
ld r2, %d
jeq r1, 74, +1
ld r2, %d
jle r0, r2, +5
count over_total, 1
upd over_by_nr, r1, 1
ring offenders, r1, r0
emit fired, r0
ret
|}
    read_us write_us fsync_us default_us

(* IRQ-storm sentinel: counts deliveries per vector in a sliding
   [window_us] window kept in perkey maps; over [threshold] deliveries
   in one window fires and re-arms. *)
let irq_storm ?(window_us = 1_000) ?(threshold = 200) () =
  Printf.sprintf
    {|# always-on watchdog: interrupt storms per vector
prog watchdog.irq_storm
attach irq_entry
map perkey win_start
map perkey win_count
map counter fired
ldctx r0, vector
ldctx r1, now_ns
get r2, win_start, r0
ld r3, r1
sub r3, r2
ld r4, %d
jle r3, r4, +2
setk win_start, r0, r1
setk win_count, r0, 0
upd win_count, r0, 1
get r5, win_count, r0
ld r6, %d
jle r5, r6, +3
emit fired, r5
count fired, 1
setk win_count, r0, 0
ret
|}
    (window_us * 1_000) threshold

(* Example: syscall invocation counts keyed by nr. *)
let syscall_count =
  {|prog syscall.count
attach syscall_enter
map perkey by_nr
ldctx r0, nr
upd by_nr, r0, 1
ret
|}

(* Example: block completion latency histogram + request counts per
   MiB of disk (sector >> 11). *)
let blk_lat =
  {|prog blk.lat
attach blk_complete
map hist lat_us
map perkey by_mb
ldctx r0, lat_ns
div r0, 1000
hist lat_us, r0
ldctx r1, sector
lsr r1, 11
upd by_mb, r1, 1
ret
|}

(* Example: network byte/segment totals across tx and rx. *)
let net_bytes =
  {|prog net.bytes
attach net_tx
attach net_rx
map counter bytes
map counter segs
ldctx r0, bytes
count bytes, r0
ldctx r1, nseg
count segs, r1
ret
|}

(* The EXPERIMENTS.md worked recipe: read(2) latency histogram keyed
   by fd, filtered to reads that overlapped a journal commit. *)
let read_lat_by_fd =
  {|prog read_lat_by_fd
attach syscall_exit
map khist lat_us_by_fd
map counter reads_in_commit
ldctx r0, nr
jne r0, 0, +7
ldctx r1, journal_commit
jeq r1, 0, +5
ldctx r2, lat_ns
div r2, 1000
ldctx r3, arg0
histk lat_us_by_fd, r3, r2
count reads_in_commit, 1
ret
|}

let watchdogs () = [ hung_task (); syscall_slo (); irq_storm () ]

let examples =
  [
    ("syscall.count", syscall_count);
    ("blk.lat", blk_lat);
    ("net.bytes", net_bytes);
    ("read_lat_by_fd", read_lat_by_fd);
  ]

let by_name name =
  match List.assoc_opt name examples with
  | Some t -> Some t
  | None -> (
    match name with
    | "watchdog.hung_task" -> Some (hung_task ())
    | "watchdog.syscall_slo" -> Some (syscall_slo ())
    | "watchdog.irq_storm" -> Some (irq_storm ())
    | _ -> None)

let names =
  [ "watchdog.hung_task"; "watchdog.syscall_slo"; "watchdog.irq_storm" ]
  @ List.map fst examples

(* Boot-time install. Templates must verify like any user program; a
   template failing its own verifier is a build bug, so be loud. *)
let install_watchdogs () =
  List.iter
    (fun text ->
      match Registry.load_text text with
      | Ok _ -> ()
      | Error e -> failwith ("kprobe watchdog template rejected: " ^ e))
    (watchdogs ())
