(* Per-program map state. Every map a program can touch is created here
   at load time from its declarations, so the VM never allocates and
   writes cannot escape the program's own store. Rendering is fully
   deterministic: declaration order for maps, sorted keys within a map,
   insertion order (oldest first) for rings. *)

open Insn

let ring_capacity = 64

type ring = {
  mutable entries : (int64 * int64) array; (* circular, (key, value) *)
  mutable head : int;
  mutable rlen : int;
  mutable rdropped : int;
}

type store = {
  counters : (string, int64 ref) Hashtbl.t;
  perkey : (string, (int64, int64 ref) Hashtbl.t) Hashtbl.t;
  hists : (string, Sim.Hist.t) Hashtbl.t;
  khists : (string, (int64, Sim.Hist.t) Hashtbl.t) Hashtbl.t;
  rings : (string, ring) Hashtbl.t;
  decls : (string * map_kind) list;
}

let create decls =
  let s =
    {
      counters = Hashtbl.create 4;
      perkey = Hashtbl.create 4;
      hists = Hashtbl.create 4;
      khists = Hashtbl.create 4;
      rings = Hashtbl.create 4;
      decls;
    }
  in
  List.iter
    (fun (n, k) ->
      match k with
      | Counter -> Hashtbl.replace s.counters n (ref 0L)
      | Perkey -> Hashtbl.replace s.perkey n (Hashtbl.create 16)
      | Histogram -> Hashtbl.replace s.hists n (Sim.Hist.create ())
      | Keyed_histogram -> Hashtbl.replace s.khists n (Hashtbl.create 16)
      | Ring ->
        Hashtbl.replace s.rings n
          { entries = Array.make ring_capacity (0L, 0L); head = 0; rlen = 0; rdropped = 0 })
    decls;
  s

(* The verifier guarantees every (name, kind) the VM uses was declared,
   so lookups cannot fail; [find] keeps that invariant loud. *)
let find tbl name = Hashtbl.find tbl name

let bump s name v =
  let c = find s.counters name in
  c := Int64.add !c v

let cell tbl key =
  match Hashtbl.find_opt tbl key with
  | Some c -> c
  | None ->
    let c = ref 0L in
    Hashtbl.replace tbl key c;
    c

let upd s name key v =
  let c = cell (find s.perkey name) key in
  c := Int64.add !c v

let setk s name key v = cell (find s.perkey name) key := v

let get s name key =
  match Hashtbl.find_opt (find s.perkey name) key with Some c -> !c | None -> 0L

let hist_rec s name v = Sim.Hist.record (find s.hists name) (Int64.to_float v)

let khist_rec s name key v =
  let tbl = find s.khists name in
  let h =
    match Hashtbl.find_opt tbl key with
    | Some h -> h
    | None ->
      let h = Sim.Hist.create () in
      Hashtbl.replace tbl key h;
      h
  in
  Sim.Hist.record h (Int64.to_float v)

let ring_push s name key v =
  let r = find s.rings name in
  r.entries.(r.head) <- (key, v);
  r.head <- (r.head + 1) mod ring_capacity;
  if r.rlen < ring_capacity then r.rlen <- r.rlen + 1 else r.rdropped <- r.rdropped + 1

let ring_entries r =
  let first = (r.head - r.rlen + ring_capacity) mod ring_capacity in
  List.init r.rlen (fun i -> r.entries.((first + i) mod ring_capacity))

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int64.compare

let hist_line h =
  let cell p =
    match Sim.Hist.percentile h p with
    | Some v -> Printf.sprintf "%.3f" v
    | None -> "-"
  in
  let max_cell =
    if Sim.Hist.count h = 0 then "-" else Printf.sprintf "%.3f" (Sim.Hist.max_value h)
  in
  Printf.sprintf "count %d p50 %s p90 %s p99 %s max %s" (Sim.Hist.count h) (cell 50.) (cell 90.)
    (cell 99.) max_cell

let render s =
  let b = Buffer.create 256 in
  List.iter
    (fun (n, k) ->
      match k with
      | Counter ->
        Buffer.add_string b (Printf.sprintf "map %s (counter): %Ld\n" n !(find s.counters n))
      | Perkey ->
        let tbl = find s.perkey n in
        Buffer.add_string b (Printf.sprintf "map %s (perkey): %d keys\n" n (Hashtbl.length tbl));
        List.iter
          (fun key -> Buffer.add_string b (Printf.sprintf "  %Ld -> %Ld\n" key !(Hashtbl.find tbl key)))
          (sorted_keys tbl)
      | Histogram ->
        Buffer.add_string b (Printf.sprintf "map %s (hist): %s\n" n (hist_line (find s.hists n)))
      | Keyed_histogram ->
        let tbl = find s.khists n in
        Buffer.add_string b (Printf.sprintf "map %s (khist): %d keys\n" n (Hashtbl.length tbl));
        List.iter
          (fun key ->
            Buffer.add_string b
              (Printf.sprintf "  %Ld: %s\n" key (hist_line (Hashtbl.find tbl key))))
          (sorted_keys tbl)
      | Ring ->
        let r = find s.rings n in
        Buffer.add_string b
          (Printf.sprintf "map %s (ring, cap %d): %d entries, %d dropped\n" n ring_capacity r.rlen
             r.rdropped);
        List.iter
          (fun (key, v) -> Buffer.add_string b (Printf.sprintf "  %Ld = %Ld\n" key v))
          (ring_entries r))
    s.decls;
  Buffer.contents b
