(* Load-time verifier: a program is admitted only if we can prove
   - termination: every jump is strictly forward and the program is
     bounded, so the pc strictly increases and execution visits each
     instruction at most once;
   - memory safety: registers are read only after a write on EVERY
     path reaching the read (forward dataflow over a bitmask of
     initialised registers), and context loads touch only fields
     whitelisted for EVERY attach point the program hooks;
   - side-effect confinement: map instructions name only maps the
     program declares, with matching kinds, so a program can write
     nothing but its own state (Emit bumps a stat namespaced under the
     program's name).

   Rejections return a reason string; nothing is ever half-loaded. *)

open Insn

let max_insns = 256

let max_maps = 16

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let valid_ident s =
  String.length s > 0
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
         || c = '_' || c = '.' || c = '-')
       s

let check_reg pc r = if r < 0 || r >= nregs then err "invalid register r%d at pc %d" r pc else Ok ()

let check_operand pc = function Reg r -> check_reg pc r | Imm _ -> Ok ()

(* A ctx field must be legal at EVERY attach point the program hooks,
   so one resolved slot layout per point is safe. *)
let check_ctx pc attach c =
  let per_point ap =
    let fields = Sim.Trace.attach_fields ap in
    match c with
    | Cidx i ->
      if i < 0 || i >= Array.length fields then
        err "ctx field index %d out of bounds at pc %d for attach point %s (%d fields)" i pc
          (Sim.Trace.attach_name ap) (Array.length fields)
      else Ok ()
    | Cname n ->
      if Array.exists (( = ) n) fields then Ok ()
      else
        err "ctx field '%s' at pc %d is not whitelisted at attach point %s (fields: %s)" n pc
          (Sim.Trace.attach_name ap)
          (String.concat ", " (Array.to_list fields))
  in
  List.fold_left (fun acc ap -> match acc with Error _ -> acc | Ok () -> per_point ap) (Ok ()) attach

let check_map pc prog m want =
  match List.assoc_opt m prog.maps with
  | None ->
    err "map '%s' at pc %d is not declared by program '%s' (own maps: %s)" m pc prog.pname
      (match prog.maps with
      | [] -> "none"
      | ms -> String.concat ", " (List.map fst ms))
  | Some k when k <> want ->
    err "map '%s' at pc %d is declared %s but used as %s" m pc (map_kind_name k)
      (map_kind_name want)
  | Some _ -> Ok ()

let check_jump pc len off =
  if off < 1 then
    err "backward or in-place jump at pc %d (offset %+d): only strictly forward jumps are allowed"
      pc off
  else if pc + 1 + off > len then
    err "jump at pc %d (offset +%d) overshoots the program end (length %d)" pc off len
  else Ok ()

(* Per-instruction static checks. *)
let check_insn prog len pc insn =
  let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
  match insn with
  | Ld (r, o) ->
    let* () = check_reg pc r in
    check_operand pc o
  | Ldctx (r, c) ->
    let* () = check_reg pc r in
    check_ctx pc prog.attach c
  | Alu (_, r, o) ->
    let* () = check_reg pc r in
    check_operand pc o
  | Jmp n -> check_jump pc len n
  | Jcond (_, r, o, n) ->
    let* () = check_reg pc r in
    let* () = check_operand pc o in
    check_jump pc len n
  | Count (m, o) ->
    let* () = check_map pc prog m Counter in
    check_operand pc o
  | Upd (m, k, o) ->
    let* () = check_map pc prog m Perkey in
    let* () = check_reg pc k in
    check_operand pc o
  | Setk (m, k, o) ->
    let* () = check_map pc prog m Perkey in
    let* () = check_reg pc k in
    check_operand pc o
  | Get (r, m, k) ->
    let* () = check_reg pc r in
    let* () = check_map pc prog m Perkey in
    check_reg pc k
  | Hist (m, r) ->
    let* () = check_map pc prog m Histogram in
    check_reg pc r
  | Histk (m, k, r) ->
    let* () = check_map pc prog m Keyed_histogram in
    let* () = check_reg pc k in
    check_reg pc r
  | Ringp (m, k, r) ->
    let* () = check_map pc prog m Ring in
    let* () = check_reg pc k in
    check_reg pc r
  | Emit (l, o) ->
    if not (valid_ident l) then err "emit label '%s' at pc %d is not a valid identifier" l pc
    else check_operand pc o
  | Ret -> Ok ()

(* Registers read / written by an instruction, as bitmasks. *)
let reads = function
  | Ld (_, Reg s) | Alu (_, _, Reg s) -> [ s ]
  | Ld (_, Imm _) | Ldctx _ -> []
  | Alu (_, r, Imm _) -> [ r ]
  | Jmp _ | Ret -> []
  | Jcond (_, r, Reg s, _) -> [ r; s ]
  | Jcond (_, r, Imm _, _) -> [ r ]
  | Count (_, Reg s) -> [ s ]
  | Count (_, Imm _) -> []
  | Upd (_, k, Reg s) | Setk (_, k, Reg s) -> [ k; s ]
  | Upd (_, k, Imm _) | Setk (_, k, Imm _) -> [ k ]
  | Get (_, _, k) -> [ k ]
  | Hist (_, r) -> [ r ]
  | Histk (_, k, r) | Ringp (_, k, r) -> [ k; r ]
  | Emit (_, Reg s) -> [ s ]
  | Emit (_, Imm _) -> []

let writes = function
  | Ld (r, _) | Ldctx (r, _) | Get (r, _, _) -> [ r ]
  | Alu (_, r, _) -> [ r ] (* rd is read-modify-write; the read is in [reads] *)
  | _ -> []

let alu_reads_dst = function Alu (_, r, _) -> [ r ] | _ -> []

(* Forward dataflow: known.(pc) = Some mask of registers initialised on
   every path reaching pc (None = unreachable). Because all edges go
   forward, one left-to-right pass reaches the fixpoint. *)
let check_init code =
  let len = Array.length code in
  let known = Array.make (len + 1) None in
  known.(0) <- Some 0;
  let merge j m =
    known.(j) <- (match known.(j) with None -> Some m | Some m0 -> Some (m0 land m))
  in
  let result = ref (Ok ()) in
  for pc = 0 to len - 1 do
    match (!result, known.(pc)) with
    | Error _, _ | _, None -> ()
    | Ok (), Some mask ->
      let insn = code.(pc) in
      let need = reads insn @ alu_reads_dst insn in
      (match List.find_opt (fun r -> mask land (1 lsl r) = 0) need with
      | Some r -> result := err "register r%d read before initialisation at pc %d" r pc
      | None ->
        let mask' = List.fold_left (fun m r -> m lor (1 lsl r)) mask (writes insn) in
        (match insn with
        | Ret -> ()
        | Jmp n -> merge (pc + 1 + n) mask'
        | Jcond (_, _, _, n) ->
          merge (pc + 1) mask';
          merge (pc + 1 + n) mask'
        | _ -> merge (pc + 1) mask'))
  done;
  !result

let verify (prog : prog) : (unit, string) result =
  let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
  let len = Array.length prog.code in
  let* () = if valid_ident prog.pname then Ok () else err "invalid program name '%s'" prog.pname in
  let* () =
    if prog.attach = [] then err "program '%s' has no attach point" prog.pname else Ok ()
  in
  let* () = if len = 0 then err "empty program" else Ok () in
  let* () =
    if len > max_insns then
      err "program too long: %d instructions exceeds the %d-instruction bound" len max_insns
    else Ok ()
  in
  let* () =
    if List.length prog.maps > max_maps then
      err "too many maps: %d exceeds the %d-map bound" (List.length prog.maps) max_maps
    else Ok ()
  in
  let* () =
    let rec dup = function
      | [] -> Ok ()
      | (n, _) :: tl ->
        if not (valid_ident n) then err "invalid map name '%s'" n
        else if List.mem_assoc n tl then err "duplicate map name '%s'" n
        else dup tl
    in
    dup prog.maps
  in
  let* () =
    let acc = ref (Ok ()) in
    Array.iteri
      (fun pc insn -> match !acc with Error _ -> () | Ok () -> acc := check_insn prog len pc insn)
      prog.code;
    !acc
  in
  check_init prog.code
