(* The probe bytecode: a deliberately tiny, eBPF-shaped instruction set
   whose every program can be proven safe at load time (see
   Verifier). Eight int64 registers r0..r7; jumps skip a positive
   number of following instructions, so control flow only moves
   forward and termination is structural. All state a program can
   write lives in its own named maps. *)

let nregs = 8

type alu = Add | Sub | Mul | Div | And | Or | Lsl | Lsr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

(* Source operand: a register or an immediate. *)
type operand = Reg of int | Imm of int64

(* Context-field reference: by whitelisted name (resolved against the
   attach point's field table at load time) or by raw slot index. *)
type ctxref = Cname of string | Cidx of int

type insn =
  | Ld of int * operand (* rd <- src *)
  | Ldctx of int * ctxref (* rd <- ctx field *)
  | Alu of alu * int * operand (* rd <- rd op src; /0 and >=64-bit shifts yield 0 *)
  | Jmp of int (* skip the next n instructions, n >= 1 *)
  | Jcond of cmp * int * operand * int (* if (ra cmp src) skip next n, n >= 1 *)
  | Count of string * operand (* counter map += src *)
  | Upd of string * int * operand (* perkey map[rkey] += src *)
  | Setk of string * int * operand (* perkey map[rkey] <- src *)
  | Get of int * string * int (* rd <- perkey map[rkey] (0 if absent) *)
  | Hist of string * int (* hist map <- float rv *)
  | Histk of string * int * int (* khist map[rkey] <- float rv *)
  | Ringp of string * int * int (* ring map push (rkey, rval), bounded *)
  | Emit of string * operand (* stat <prog>.<label> += 1 + ktrace Probe record *)
  | Ret

type map_kind = Counter | Perkey | Histogram | Keyed_histogram | Ring

let map_kind_name = function
  | Counter -> "counter"
  | Perkey -> "perkey"
  | Histogram -> "hist"
  | Keyed_histogram -> "khist"
  | Ring -> "ring"

let map_kind_of_string = function
  | "counter" -> Some Counter
  | "perkey" -> Some Perkey
  | "hist" -> Some Histogram
  | "khist" -> Some Keyed_histogram
  | "ring" -> Some Ring
  | _ -> None

type prog = {
  pname : string;
  attach : Sim.Trace.attach_point list;
  maps : (string * map_kind) list; (* declaration order *)
  code : insn array;
}

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | And -> "and"
  | Or -> "or"
  | Lsl -> "lsl"
  | Lsr -> "lsr"

let cmp_name = function
  | Eq -> "jeq"
  | Ne -> "jne"
  | Lt -> "jlt"
  | Le -> "jle"
  | Gt -> "jgt"
  | Ge -> "jge"

let operand_str = function Reg r -> Printf.sprintf "r%d" r | Imm v -> Int64.to_string v

let ctxref_str = function Cname s -> s | Cidx i -> string_of_int i

let insn_str = function
  | Ld (r, o) -> Printf.sprintf "ld r%d, %s" r (operand_str o)
  | Ldctx (r, c) -> Printf.sprintf "ldctx r%d, %s" r (ctxref_str c)
  | Alu (op, r, o) -> Printf.sprintf "%s r%d, %s" (alu_name op) r (operand_str o)
  | Jmp n -> Printf.sprintf "jmp +%d" n
  | Jcond (c, r, o, n) -> Printf.sprintf "%s r%d, %s, +%d" (cmp_name c) r (operand_str o) n
  | Count (m, o) -> Printf.sprintf "count %s, %s" m (operand_str o)
  | Upd (m, k, o) -> Printf.sprintf "upd %s, r%d, %s" m k (operand_str o)
  | Setk (m, k, o) -> Printf.sprintf "setk %s, r%d, %s" m k (operand_str o)
  | Get (r, m, k) -> Printf.sprintf "get r%d, %s, r%d" r m k
  | Hist (m, r) -> Printf.sprintf "hist %s, r%d" m r
  | Histk (m, k, r) -> Printf.sprintf "histk %s, r%d, r%d" m k r
  | Ringp (m, k, r) -> Printf.sprintf "ring %s, r%d, r%d" m k r
  | Emit (l, o) -> Printf.sprintf "emit %s, %s" l (operand_str o)
  | Ret -> "ret"

let render_prog p =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "prog %s\n" p.pname);
  List.iter
    (fun ap -> Buffer.add_string b (Printf.sprintf "attach %s\n" (Sim.Trace.attach_name ap)))
    p.attach;
  List.iter
    (fun (n, k) -> Buffer.add_string b (Printf.sprintf "map %s %s\n" (map_kind_name k) n))
    p.maps;
  Array.iteri (fun i insn -> Buffer.add_string b (Printf.sprintf "%3d: %s\n" i (insn_str insn))) p.code;
  Buffer.contents b
