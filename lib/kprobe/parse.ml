(* Text assembler for probe programs. One directive or instruction per
   line; '#' starts a comment. Grammar:

     prog <name>
     attach <point>            # repeatable; see Trace.attach_name
     map <kind> <name>         # kind: counter|perkey|hist|khist|ring
     <mnemonic> operands...    # see Insn; jump offsets written +N

   Operands are separated by commas and/or spaces. Registers are
   r0..r7; anything else numeric is an immediate; ldctx takes a field
   name or slot index. Errors return [Error "line N: ..."]. *)

open Insn

let err ln fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "line %d: %s" ln s)) fmt

let split_tokens line =
  String.split_on_char ' ' (String.map (fun c -> if c = ',' || c = '\t' then ' ' else c) line)
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line

let parse_reg tok =
  if String.length tok >= 2 && tok.[0] = 'r' then int_of_string_opt (String.sub tok 1 (String.length tok - 1))
  else None

let parse_operand tok =
  match parse_reg tok with
  | Some r -> Some (Reg r)
  | None -> ( match Int64.of_string_opt tok with Some v -> Some (Imm v) | None -> None)

let parse_offset tok =
  let tok = if String.length tok > 0 && tok.[0] = '+' then String.sub tok 1 (String.length tok - 1) else tok in
  int_of_string_opt tok

let alu_of_string = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "div" -> Some Div
  | "and" -> Some And
  | "or" -> Some Or
  | "lsl" -> Some Lsl
  | "lsr" -> Some Lsr
  | _ -> None

let cmp_of_string = function
  | "jeq" -> Some Eq
  | "jne" -> Some Ne
  | "jlt" -> Some Lt
  | "jle" -> Some Le
  | "jgt" -> Some Gt
  | "jge" -> Some Ge
  | _ -> None

let parse_insn ln mnem args =
  let reg tok k = match parse_reg tok with Some r -> k r | None -> err ln "expected register, got '%s'" tok in
  let operand tok k =
    match parse_operand tok with Some o -> k o | None -> err ln "expected register or immediate, got '%s'" tok
  in
  let offset tok k =
    match parse_offset tok with Some n -> k n | None -> err ln "expected jump offset, got '%s'" tok
  in
  match (mnem, args) with
  | "ld", [ a; b ] -> reg a (fun r -> operand b (fun o -> Ok (Ld (r, o))))
  | "ldctx", [ a; b ] ->
    reg a (fun r ->
        match int_of_string_opt b with
        | Some i -> Ok (Ldctx (r, Cidx i))
        | None -> Ok (Ldctx (r, Cname b)))
  | ("add" | "sub" | "mul" | "div" | "and" | "or" | "lsl" | "lsr"), [ a; b ] ->
    let op = Option.get (alu_of_string mnem) in
    reg a (fun r -> operand b (fun o -> Ok (Alu (op, r, o))))
  | "jmp", [ a ] -> offset a (fun n -> Ok (Jmp n))
  | ("jeq" | "jne" | "jlt" | "jle" | "jgt" | "jge"), [ a; b; c ] ->
    let cmp = Option.get (cmp_of_string mnem) in
    reg a (fun r -> operand b (fun o -> offset c (fun n -> Ok (Jcond (cmp, r, o, n)))))
  | "count", [ m; v ] -> operand v (fun o -> Ok (Count (m, o)))
  | "upd", [ m; k; v ] -> reg k (fun rk -> operand v (fun o -> Ok (Upd (m, rk, o))))
  | "setk", [ m; k; v ] -> reg k (fun rk -> operand v (fun o -> Ok (Setk (m, rk, o))))
  | "get", [ a; m; k ] -> reg a (fun r -> reg k (fun rk -> Ok (Get (r, m, rk))))
  | "hist", [ m; v ] -> reg v (fun r -> Ok (Hist (m, r)))
  | "histk", [ m; k; v ] -> reg k (fun rk -> reg v (fun r -> Ok (Histk (m, rk, r))))
  | "ring", [ m; k; v ] -> reg k (fun rk -> reg v (fun r -> Ok (Ringp (m, rk, r))))
  | "emit", [ l; v ] -> operand v (fun o -> Ok (Emit (l, o)))
  | "ret", [] -> Ok Ret
  | _ -> err ln "cannot parse instruction '%s %s'" mnem (String.concat ", " args)

let parse text : (prog, string) result =
  let name = ref "" in
  let attach = ref [] in
  let maps = ref [] in
  let code = ref [] in
  let error = ref None in
  let fail e = if !error = None then error := Some e in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      if !error = None then
        match split_tokens (strip_comment line) with
        | [] -> ()
        | [ "prog"; n ] -> name := n
        | "prog" :: _ -> fail (Printf.sprintf "line %d: prog takes exactly one name" ln)
        | [ "attach"; p ] -> (
          match Sim.Trace.attach_of_string p with
          | Some ap -> attach := !attach @ [ ap ]
          | None ->
            fail
              (Printf.sprintf "line %d: unknown attach point '%s' (known: %s)" ln p
                 (String.concat ", " (List.map Sim.Trace.attach_name Sim.Trace.all_attach_points))))
        | [ "map"; k; n ] -> (
          match map_kind_of_string k with
          | Some kind -> maps := !maps @ [ (n, kind) ]
          | None -> fail (Printf.sprintf "line %d: unknown map kind '%s'" ln k))
        | mnem :: args -> (
          match parse_insn ln (String.lowercase_ascii mnem) args with
          | Ok insn -> code := insn :: !code
          | Error e -> fail e))
    (String.split_on_char '\n' text);
  match !error with
  | Some e -> Error e
  | None ->
    if !name = "" then Error "missing 'prog <name>' directive"
    else Ok { pname = !name; attach = !attach; maps = !maps; code = Array.of_list (List.rev !code) }
