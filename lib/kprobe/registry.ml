(* Loaded-program registry: the kernel-side object store behind the
   probe_load/probe_read syscalls, /proc/kprobe, and the CLI. Loading
   is atomic — parse, verify, resolve, then attach — so a rejected
   program leaves no trace beyond [last_error]. *)

type loaded = {
  prog : Insn.prog;
  store : Maps.store;
  loaded_at : int64; (* virtual cycles *)
}

let table : (string, loaded) Hashtbl.t = Hashtbl.create 8

let order : string list ref = ref [] (* load order, for deterministic listings *)

let last_error = ref ""

let find name = Hashtbl.find_opt table name

let list () = !order

let unload name =
  match find name with
  | None -> false
  | Some _ ->
    Sim.Trace.detach_name name;
    Hashtbl.remove table name;
    order := List.filter (( <> ) name) !order;
    true

let reset () =
  List.iter (fun name -> Sim.Trace.detach_name name) !order;
  Hashtbl.reset table;
  order := [];
  last_error := ""

(* Load from program text. Returns the program name, or the rejection
   reason (also latched in [last_error]). Reloading a name replaces
   the previous instance. *)
let load_text text : (string, string) result =
  match Parse.parse text with
  | Error e ->
    last_error := e;
    Error e
  | Ok prog -> (
    match Verifier.verify prog with
    | Error e ->
      last_error := e;
      Error e
    | Ok () ->
      ignore (unload prog.pname);
      let store = Maps.create prog.maps in
      let l = { prog; store; loaded_at = Sim.Clock.now () } in
      Hashtbl.replace table prog.pname l;
      order := !order @ [ prog.pname ];
      List.iter
        (fun ap ->
          let code = Vm.resolve_ctx prog ap in
          Sim.Trace.attach ap ~name:prog.pname (fun ctx -> Vm.exec ~prog ~store ~code ~ctx))
        prog.attach;
      last_error := "";
      Ok prog.pname)

let render_maps name =
  match find name with None -> None | Some l -> Some (Maps.render l.store)

let render_prog name =
  match find name with None -> None | Some l -> Some (Insn.render_prog l.prog)

(* One line per program, for /proc/kprobe/programs and `probe list`. *)
let render_list () =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "%-28s %6s %6s %s\n" "name" "insns" "maps" "attach");
  List.iter
    (fun name ->
      match find name with
      | None -> ()
      | Some l ->
        Buffer.add_string b
          (Printf.sprintf "%-28s %6d %6d %s\n" name
             (Array.length l.prog.code)
             (List.length l.prog.maps)
             (String.concat "," (List.map Sim.Trace.attach_name l.prog.attach))))
    !order;
  if !last_error <> "" then Buffer.add_string b (Printf.sprintf "last_error: %s\n" !last_error);
  Buffer.contents b
