let block_size = 4096

let sectors_per_block = block_size / 512

type op = Read | Write | Write_fua | Flush

type bio = {
  op : op;
  sector : int;
  frame : Ostd.Frame.t option;
  len : int;
  mutable status : int option;
  wq : Ostd.Wait_queue.t;
  (* kspan ownership: the request span this bio belongs to (0 = none),
     captured at creation and inherited by every clone so the owner
     survives merges, batch splits and the retry ladder. Only the
     primary (caller-visible) bio reports segments and the conservation
     count — clones are implementation detail. *)
  span : int;
  primary : bool;
  created : int64;
  mutable issued : int64; (* driver pushed it to the device; 0 = never *)
  mutable dev_done : int64; (* device-written completion stamp; 0 = unknown *)
}

let make_bio op ~sector ?frame ~len () =
  (match (op, frame) with
  | (Read | Write | Write_fua), None ->
    Ostd.Panic.panic "Block.make_bio: data op without a buffer"
  | _ -> ());
  let span = Sim.Span.current () in
  (* Span-ownership conservation: one creation count per span-owned
     primary bio. Clones made for merging never re-count; completion
     counts exactly once (span.bio_completed), so the two counters must
     agree across merges, batch splits and per-bio EIO fallback. *)
  if span > 0 then Sim.Stats.incr "span.bio_created";
  {
    op; sector; frame; len; status = None; wq = Ostd.Wait_queue.create ();
    span; primary = true; created = Sim.Clock.now ();
    issued = 0L; dev_done = 0L;
  }

let bio_status bio = bio.status

let bio_op bio = bio.op

let bio_sector bio = bio.sector

let bio_frame bio = bio.frame

let bio_len bio = bio.len

let bio_span bio = bio.span

let note_issued bio = if Int64.equal bio.issued 0L then bio.issued <- Sim.Clock.now ()

let note_dev_done bio ts = bio.dev_done <- ts

let complete_bio bio ~status =
  let first = bio.status = None in
  bio.status <- Some status;
  (* Waterfall segments for the owning span, recorded once on the
     primary bio: queue wait (creation → device issue), device service
     (issue → the device's completion stamp), and IRQ-delivery delay
     (stamp → this completion running). Missing stamps degrade
     gracefully — the whole interval collapses into the earlier leg. *)
  if first && bio.primary && bio.span > 0 then begin
    let now = Sim.Clock.now () in
    let q_end = if Int64.compare bio.issued 0L > 0 then bio.issued else now in
    Sim.Span.add_to bio.span "blk.queue" bio.created q_end;
    if Int64.compare bio.issued 0L > 0 then begin
      let s_end = if Int64.compare bio.dev_done 0L > 0 then bio.dev_done else now in
      Sim.Span.add_to bio.span "blk.service" bio.issued s_end;
      if Int64.compare bio.dev_done 0L > 0 then
        Sim.Span.add_to bio.span "blk.irq" bio.dev_done now
    end;
    Sim.Span.count_bio_completed ()
  end;
  ignore (Ostd.Wait_queue.wake_all bio.wq)

module type DRIVER = sig
  val capacity_sectors : unit -> int
  val submit : bio -> unit
  val submit_many : bio list -> unit
  val cancel : bio -> unit
end

let driver : (module DRIVER) option ref = ref None

let register_driver d = driver := Some d

let have_driver () = !driver <> None

let the_driver () =
  match !driver with
  | Some d -> d
  | None -> Ostd.Panic.panic "Block: no block driver registered"

let capacity_sectors () =
  let (module D) = the_driver () in
  D.capacity_sectors ()

(* --- Per-bio deadlines with bounded retry ---

   A request that the device errors, delays past its deadline, or drops
   outright (no status write, no interrupt — the hostile-device
   behaviour Inv. 6 anticipates) is retried with an exponentially
   growing deadline and backoff; after [bio_max_attempts] the bio fails
   with the device's errno (EIO for a timeout). Nothing below the block
   layer can therefore hang or panic a caller. *)

let bio_max_attempts = 5

let bio_deadline_cycles attempt =
  (* 8 ms virtual for the first try, doubling, capped at 64 ms. *)
  Sim.Clock.us (8000. *. float_of_int (1 lsl min attempt 3))

let backoff_cycles attempt = Sim.Clock.us (100. *. float_of_int (1 lsl attempt))

(* Clones keep the original's span and creation time (the request has
   been queueing since the primary was made, not since this attempt)
   but are never primary: exactly one segment report and conservation
   count per caller-visible bio. *)
let clone_bio bio =
  {
    bio with
    status = None;
    wq = Ostd.Wait_queue.create ();
    primary = false;
    issued = 0L;
    dev_done = 0L;
  }

(* Wait until the bio completes or the deadline passes. In task context
   we sleep on the bio's wait queue with a timer; at early boot (mkfs /
   mount before tasks exist) we poll the event loop. *)
let wait_with_deadline bio ~cycles =
  match Ostd.Task.current_opt () with
  | Some _ ->
    let timed_out = ref false in
    let ev =
      Sim.Events.schedule_after cycles (fun () ->
          timed_out := true;
          ignore (Ostd.Wait_queue.wake_all bio.wq))
    in
    Ostd.Wait_queue.sleep_until bio.wq (fun () -> bio.status <> None || !timed_out);
    Sim.Events.cancel ev;
    if bio.status <> None then `Done else `Timeout
  | None ->
    let deadline = Int64.add (Sim.Clock.now ()) (Int64.of_int cycles) in
    let rec poll () =
      if bio.status <> None then `Done
      else if Int64.compare (Sim.Clock.now ()) deadline > 0 then `Timeout
      else if Sim.Events.run_next () then poll ()
      else `Timeout (* the device went silent: no completion will ever come *)
    in
    poll ()

let op_name = function
  | Read -> "read"
  | Write -> "write"
  | Write_fua -> "write_fua"
  | Flush -> "flush"

let bio_args bio =
  Printf.sprintf "op=%s sector=%d len=%d" (op_name bio.op) bio.sector bio.len

(* Probe ctx encoding: write = 0 read / 1 write / 2 flush. *)
let op_code = function Read -> 0L | Write | Write_fua -> 1L | Flush -> 2L

let fire_issue bio =
  Sim.Trace.fire Sim.Trace.P_blk_issue (fun () ->
      [| Int64.of_int bio.sector; Int64.of_int bio.len; op_code bio.op |])

let fire_complete bio ~t0 ~status =
  Sim.Trace.fire Sim.Trace.P_blk_complete (fun () ->
      [|
        Int64.of_int bio.sector; Int64.of_int bio.len; op_code bio.op;
        Int64.of_float (Sim.Clock.to_us (Int64.sub (Sim.Clock.now ()) t0) *. 1000.);
        Int64.of_int status;
      |])

let submit_and_wait bio =
  let (module D) = the_driver () in
  let t0 = Sim.Clock.now () in
  let observe_latency () =
    Sim.Hist.observe "blk.bio" (Sim.Clock.to_us (Int64.sub (Sim.Clock.now ()) t0))
  in
  (* Each attempt submits a fresh clone; the caller's bio is completed
     exactly once, with the final outcome, whatever the attempts did. *)
  let rec attempt n =
    let b = clone_bio bio in
    Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.blk_issue;
    Sim.Trace.emit Sim.Trace.Blk "issue" (fun () ->
        Printf.sprintf "%s attempt=%d" (bio_args bio) n);
    fire_issue bio;
    D.submit b;
    match wait_with_deadline b ~cycles:(bio_deadline_cycles n) with
    | `Done -> (
      match b.status with
      | Some 0 ->
        if n > 0 then Sim.Stats.incr "degrade.recovered.blk_bio";
        Sim.Trace.emit Sim.Trace.Blk "complete" (fun () ->
            Printf.sprintf "%s attempts=%d" (bio_args bio) (n + 1));
        observe_latency ();
        (* The winning attempt's device timestamps become the primary
           bio's, so its span segments reflect the service that
           actually completed it. *)
        bio.issued <- b.issued;
        bio.dev_done <- b.dev_done;
        fire_complete bio ~t0 ~status:0;
        complete_bio bio ~status:0;
        Ok ()
      | Some e -> retry_or_fail n e
      | None -> assert false)
    | `Timeout ->
      Sim.Stats.incr "blk.bio_timeout";
      (* The device may still complete the stale request later; the
         driver quarantines its buffers so late DMA cannot land in
         reused memory. *)
      D.cancel b;
      retry_or_fail n Errno.eio
  and retry_or_fail n e =
    if n + 1 >= bio_max_attempts then begin
      Sim.Stats.incr "degrade.gave_up.blk_bio";
      Sim.Trace.emit Sim.Trace.Blk "give_up" (fun () ->
          Printf.sprintf "%s errno=%d" (bio_args bio) e);
      observe_latency ();
      fire_complete bio ~t0 ~status:e;
      complete_bio bio ~status:e;
      Error e
    end
    else begin
      Sim.Stats.incr "degrade.retried.blk_bio";
      Sim.Trace.emit Sim.Trace.Blk "retry" (fun () ->
          Printf.sprintf "%s attempt=%d errno=%d" (bio_args bio) n e);
      (match Ostd.Task.current_opt () with
      | Some _ -> Ostd.Task.sleep_cycles (backoff_cycles n)
      | None -> ());
      attempt (n + 1)
    end
  in
  (* kprof: block-layer time (issue, waits, retries) folds under "blk". *)
  Sim.Prof.scope "blk" (fun () -> attempt 0)

(* --- Batched submission (the plug/unplug request queue) ---

   [submit_batch] sector-sorts its bios and merges adjacent same-op bios
   into multi-request descriptor chains, each issued with one
   [blk_issue] charge, one doorbell, and one completion interrupt, under
   a single shared deadline. A batch in which any request errors or
   times out is split back into per-bio [submit_and_wait] attempts, so
   the retry/EIO story stays exactly the single-bio one. *)

let max_batch = 32

let op_rank = function Read -> 0 | Write -> 1 | Write_fua -> 2 | Flush -> 3

(* One deadline for the whole chain: first-attempt bio deadline plus a
   per-request allowance comfortably above the device's per-descriptor
   service time. *)
let batch_deadline_cycles n = Sim.Clock.us (8000. +. (250. *. float_of_int n))

(* Wait for every clone against one shared absolute deadline, reusing
   the per-bio wait (works in task context and boot-time polling). *)
let wait_batch clones ~cycles =
  let deadline = Int64.add (Sim.Clock.now ()) (Int64.of_int cycles) in
  List.iter
    (fun b ->
      if b.status = None then begin
        let remaining = Int64.to_int (Int64.sub deadline (Sim.Clock.now ())) in
        if remaining > 0 then ignore (wait_with_deadline b ~cycles:remaining)
      end)
    clones

(* Split sorted bios into runs of same-op, sector-adjacent requests. *)
let merge_runs bios =
  let sorted =
    List.sort
      (fun a b ->
        match compare (op_rank a.op) (op_rank b.op) with
        | 0 -> compare a.sector b.sector
        | c -> c)
      bios
  in
  let flush_run acc run = match run with [] -> acc | _ -> List.rev run :: acc in
  let acc, run, _ =
    List.fold_left
      (fun (acc, run, prev) b ->
        match prev with
        | Some p
          when p.op = b.op && b.op <> Flush
               && b.sector = p.sector + (p.len / 512)
               && List.length run < max_batch -> (acc, b :: run, Some b)
        | _ -> (flush_run acc run, [ b ], Some b))
      ([], [], None) sorted
  in
  List.rev (flush_run acc run)

let issue_run run =
  let (module D) = the_driver () in
  match run with
  | [] -> ()
  | [ bio ] -> ignore (submit_and_wait bio)
  | first :: _ ->
    let n = List.length run in
    Sim.Stats.add "blk.merge" (n - 1);
    Sim.Stats.incr "blk.batch";
    Sim.Prof.scope "blk" (fun () ->
        let t0 = Sim.Clock.now () in
        Sim.Trace.emit Sim.Trace.Blk "batch_issue" (fun () ->
            Printf.sprintf "op=%s sector=%d nreq=%d" (op_name first.op) first.sector n);
        let clones = List.map clone_bio run in
        Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.blk_issue;
        List.iter fire_issue run;
        D.submit_many clones;
        wait_batch clones ~cycles:(batch_deadline_cycles n);
        if List.for_all (fun c -> c.status = Some 0) clones then begin
          let lat = Sim.Clock.to_us (Int64.sub (Sim.Clock.now ()) t0) in
          Sim.Trace.emit Sim.Trace.Blk "batch_complete" (fun () ->
              Printf.sprintf "op=%s sector=%d nreq=%d" (op_name first.op) first.sector n);
          List.iter2
            (fun bio c ->
              bio.issued <- c.issued;
              bio.dev_done <- c.dev_done;
              Sim.Hist.observe "blk.bio" lat;
              fire_complete bio ~t0 ~status:0;
              complete_bio bio ~status:0)
            run clones
        end
        else begin
          (* Mid-batch error or timeout: quarantine what never completed
             and fall back to per-bio submission, whose retry ladder and
             EIO propagation the callers already rely on. *)
          Sim.Stats.incr "blk.batch_split";
          Sim.Trace.emit Sim.Trace.Blk "batch_split" (fun () ->
              Printf.sprintf "op=%s sector=%d nreq=%d" (op_name first.op) first.sector n);
          List.iter (fun c -> if c.status = None then D.cancel c) clones;
          List.iter2
            (fun bio c ->
              match c.status with
              | Some 0 ->
                bio.issued <- c.issued;
                bio.dev_done <- c.dev_done;
                Sim.Hist.observe "blk.bio" (Sim.Clock.to_us (Int64.sub (Sim.Clock.now ()) t0));
                fire_complete bio ~t0 ~status:0;
                complete_bio bio ~status:0
              | _ -> ignore (submit_and_wait bio))
            run clones
        end)

let submit_batch bios =
  if (Sim.Profile.get ()).Sim.Profile.blk_batching then List.iter issue_run (merge_runs bios)
  else List.iter (fun bio -> ignore (submit_and_wait bio)) bios

(* --- Buffer cache --- *)

type centry = { cframe : Ostd.Frame.t; mutable dirty : bool; mutable prefetched : bool }

let cache : (int, centry) Hashtbl.t = Hashtbl.create 1024

(* Background-writeback bookkeeping (dirty_ratio-style throttling). *)
let dirty_fifo : int Queue.t = Queue.create ()

let ndirty = ref 0

let flusher_running = ref false

let throttle_wq = ref (Ostd.Wait_queue.create ())

let bg_dirty_threshold = 768

let hard_dirty_limit = 4096

(* Sticky writeback errors, errseq_t-style: background writeback runs
   in softirq context and cannot raise, so a block whose retries are
   exhausted bumps a global error sequence (and the data is dropped —
   counted as [degrade.gave_up.writeback]). Every interested party
   samples the sequence when it starts caring (a file at open(2), the
   legacy sync(2) consumer at its last report) and later asks "did an
   error happen since my sample?" — so an fsync on an affected file
   observes the loss even if some other sync(2) caller reported it
   first, exactly Linux's errseq_t semantics. *)
let wb_err_seq = ref 0

let wb_err_code = ref 0

(* The module-level sample backing the legacy first-caller-consumes
   behaviour of [sync]. *)
let sync_sample = ref 0

let record_wb_err e =
  incr wb_err_seq;
  wb_err_code := e

let wb_errseq () = !wb_err_seq

let wb_check ~since =
  if !wb_err_seq > since then Error (!wb_err_seq, !wb_err_code) else Ok ()

(* Journal-pinned blocks: the journal has logged these and not yet
   checkpointed them, so their home location on disk must not be
   overwritten — writeback (background or sync) skips them until the
   journal unpins. *)
let pinned : (int, unit) Hashtbl.t = Hashtbl.create 64

let is_pinned blockno = Hashtbl.mem pinned blockno

let reset () =
  throttle_wq := Ostd.Wait_queue.create ();
  driver := None;
  (* Frames belong to the old boot's metadata; just forget them. *)
  Hashtbl.reset cache;
  Queue.clear dirty_fifo;
  ndirty := 0;
  flusher_running := false;
  Hashtbl.reset pinned;
  wb_err_seq := 0;
  wb_err_code := 0;
  sync_sample := 0

let entry_of blockno ~fill =
  match Hashtbl.find_opt cache blockno with
  | Some e ->
    (* A demand hit on a block readahead brought in: the window paid off. *)
    if e.prefetched then begin
      e.prefetched <- false;
      Sim.Stats.incr "blk.readahead.hit"
    end;
    e
  | None ->
    let cframe = Ostd.Frame.alloc ~untyped:true () in
    if fill then begin
      Sim.Stats.incr "blk.readahead.miss";
      let bio =
        make_bio Read ~sector:(blockno * sectors_per_block) ~frame:cframe ~len:block_size ()
      in
      match submit_and_wait bio with
      | Ok () -> ()
      | Error e ->
        (* A read the device cannot serve even after retries is a
           service failure, not an invariant violation: the frame is
           dropped and EIO propagates to whoever asked. *)
        Ostd.Frame.drop cframe;
        Ostd.Panic.failf ~errno:e "buffer cache: read of block %d failed" blockno
    end
    else Ostd.Untyped.fill cframe ~off:0 ~len:block_size '\000';
    let e = { cframe; dirty = false; prefetched = false } in
    Hashtbl.add cache blockno e;
    e

let read_block blockno = (entry_of blockno ~fill:true).cframe

let read_from_block blockno ~off ~buf ~pos ~len =
  let e = entry_of blockno ~fill:true in
  Sim.Cost.charge_memcpy len;
  Ostd.Untyped.read_bytes e.cframe ~off ~buf ~pos ~len

(* Readahead / plug back end: pull a set of not-yet-cached blocks in
   with one batched submission and insert the successes as clean
   entries. Failures are dropped silently — this is a hint, and the
   demand read that eventually wants the block will retry (and report)
   on its own. [mark] distinguishes speculative readahead (entries
   tagged so a later demand hit counts [blk.readahead.hit]) from
   batching the demand range itself, which is not speculation. *)
let prefetch_blocks ?(mark = true) blocknos =
  let blocknos =
    List.filter (fun b -> not (Hashtbl.mem cache b)) (List.sort_uniq compare blocknos)
  in
  if blocknos <> [] then begin
    if mark then Sim.Stats.add "blk.readahead.issued" (List.length blocknos)
    else Sim.Stats.add "blk.plug_read" (List.length blocknos);
    let reqs =
      List.map
        (fun b ->
          let f = Ostd.Frame.alloc ~untyped:true () in
          (b, f, make_bio Read ~sector:(b * sectors_per_block) ~frame:f ~len:block_size ()))
        blocknos
    in
    submit_batch (List.map (fun (_, _, bio) -> bio) reqs);
    List.iter
      (fun (b, f, bio) ->
        if bio_status bio = Some 0 && not (Hashtbl.mem cache b) then
          Hashtbl.add cache b { cframe = f; dirty = false; prefetched = mark }
        else Ostd.Frame.drop f)
      reqs
  end

(* Drop every clean entry (used by cold-cache benchmark phases). Dirty
   blocks stay — dropping them would lose data — and so do journal-pinned
   ones: their home location on disk is stale by definition, so a
   re-read would resurrect pre-transaction bytes. Returns the count. *)
let drop_clean () =
  let victims =
    Hashtbl.fold
      (fun b e acc -> if (not e.dirty) && not (is_pinned b) then (b, e) :: acc else acc)
      cache []
  in
  List.iter
    (fun (b, e) ->
      Hashtbl.remove cache b;
      Ostd.Frame.drop e.cframe)
    victims;
  List.length victims

(* Write back a sorted [(blockno, entry)] list as merged, batched
   writes. [submit_batch] guarantees every bio is complete on return; a
   block whose write failed even after the per-bio retry ladder is
   dropped with the errseq-style sticky error (softirq context cannot
   raise, and keeping it dirty would make the flusher spin on it). *)
let writeback_many pairs =
  (* Sort (so adjacent dirty blocks merge) and dedup: the FIFO can name
     a block twice, and writing it twice would corrupt [ndirty].
     Journal-pinned blocks are skipped: their home location must stay
     untouched until the journal checkpoints them. *)
  let pairs = List.sort_uniq (fun (a, _) (b, _) -> compare a b) pairs in
  match List.filter (fun (b, e) -> e.dirty && not (is_pinned b)) pairs with
  | [] -> ()
  | dirty ->
    let reqs =
      List.map
        (fun (b, e) ->
          (make_bio Write ~sector:(b * sectors_per_block) ~frame:e.cframe ~len:block_size (), e))
        dirty
    in
    submit_batch (List.map fst reqs);
    List.iter
      (fun (bio, e) ->
        (match bio_status bio with
        | Some 0 -> ()
        | Some err ->
          Sim.Stats.incr "degrade.gave_up.writeback";
          record_wb_err err
        | None -> assert false);
        e.dirty <- false;
        decr ndirty)
      reqs

let dirty_count () = !ndirty

(* Background flusher: drain up to 512 dirty blocks from the FIFO per
   round, sorted and merged into batched writes (writeback coalescing —
   adjacent dirty blocks of a sequential writer become one chain). *)
let rec flush_batch () =
  let budget = ref 512 in
  let continue = ref true in
  let victims = ref [] in
  while !continue && !budget > 0 do
    match Queue.take_opt dirty_fifo with
    | None -> continue := false
    | Some blockno -> (
      match Hashtbl.find_opt cache blockno with
      (* A journal-pinned victim is parked: it leaves the FIFO (so the
         flusher cannot spin on it) and is re-queued when the journal
         unpins it at checkpoint. *)
      | Some e when e.dirty && not (is_pinned blockno) ->
        victims := (blockno, e) :: !victims;
        decr budget
      | Some _ | None -> ())
  done;
  writeback_many !victims;
  ignore (Ostd.Wait_queue.wake_all !throttle_wq);
  (* Recurse only while the FIFO can still make progress: with every
     remaining dirty block pinned, another round would busy-spin. *)
  if dirty_count () > bg_dirty_threshold && not (Queue.is_empty dirty_fifo) then
    flush_batch ()
  else flusher_running := false

let maybe_start_writeback () =
  if !ndirty > bg_dirty_threshold && not !flusher_running then begin
    flusher_running := true;
    Softirq.queue_work flush_batch
  end;
  (* dirty_ratio hard wall: writers stall until the flusher catches up
     (only meaningful in task context). *)
  if !ndirty > hard_dirty_limit && Ostd.Task.current_opt () <> None then
    Ostd.Wait_queue.sleep_until !throttle_wq (fun () -> !ndirty <= hard_dirty_limit)

(* Every path that turns a clean block dirty goes through here. *)
let set_dirty blockno e =
  if not e.dirty then begin
    e.dirty <- true;
    incr ndirty;
    Queue.push blockno dirty_fifo;
    maybe_start_writeback ()
  end

let write_to_block blockno ~off ~buf ~pos ~len =
  let whole = off = 0 && len = block_size in
  let e = entry_of blockno ~fill:(not whole) in
  Sim.Cost.charge_memcpy len;
  Ostd.Untyped.write_bytes e.cframe ~off ~buf ~pos ~len;
  set_dirty blockno e

let zero_block blockno =
  let e = entry_of blockno ~fill:false in
  Ostd.Untyped.fill e.cframe ~off:0 ~len:block_size '\000';
  set_dirty blockno e

let mark_dirty blockno =
  match Hashtbl.find_opt cache blockno with
  | Some e -> set_dirty blockno e
  | None -> ()

let dirty_blocks () = !ndirty

let cached_blocks () = Hashtbl.length cache

(* Journal pinning. [unpin] re-queues a still-dirty block for
   writeback: the flusher may have parked it (dropped it from the FIFO
   without writing) while it was pinned. *)
let pin blockno = Hashtbl.replace pinned blockno ()

let unpin blockno =
  if Hashtbl.mem pinned blockno then begin
    Hashtbl.remove pinned blockno;
    match Hashtbl.find_opt cache blockno with
    | Some e when e.dirty -> Queue.push blockno dirty_fifo
    | Some _ | None -> ()
  end

let flush_device () =
  Sim.Stats.incr "blk.flush";
  let bio = make_bio Flush ~sector:0 ~len:0 () in
  submit_and_wait bio

(* Write [buf] to [blockno] on the device, bypassing the cache entry
   entirely. The journal checkpoints a frozen (committed) image this
   way while the cache already holds newer uncommitted bytes. Reaches
   the volatile device cache only — follow with [flush_device] (or a
   [sync]) for durability. *)
let write_through blockno buf =
  let scratch = Ostd.Frame.alloc ~untyped:true () in
  Ostd.Untyped.write_bytes scratch ~off:0 ~buf ~pos:0 ~len:block_size;
  let bio =
    make_bio Write ~sector:(blockno * sectors_per_block) ~frame:scratch ~len:block_size ()
  in
  let r = submit_and_wait bio in
  Ostd.Frame.drop scratch;
  r

(* FUA write of one cached block: write-through, durable before this
   returns. The journal's commit record rides on this — it must not
   linger in the device's volatile cache behind the transaction it
   seals. *)
let write_block_fua blockno =
  match Hashtbl.find_opt cache blockno with
  | None -> Ok ()
  | Some e ->
    Sim.Stats.incr "blk.fua";
    let bio =
      make_bio Write_fua ~sector:(blockno * sectors_per_block) ~frame:e.cframe
        ~len:block_size ()
    in
    let r = submit_and_wait bio in
    (match r with
    | Ok () ->
      if e.dirty then begin
        e.dirty <- false;
        decr ndirty
      end
    | Error _ -> ());
    r

(* Legacy sync(2) consumption: report an error once to the first sync
   caller after it happened, via the module-level errseq sample. *)
let consume_wb_err () =
  match wb_check ~since:!sync_sample with
  | Error (seq, code) ->
    sync_sample := seq;
    Error code
  | Ok () -> Ok ()

(* [sync]/[sync_blocks] always end in a device flush: earlier
   background writeback may have parked data in the device's volatile
   cache, and pushing pages to the driver is not durability. *)
let sync () =
  let dirty = Hashtbl.fold (fun b e acc -> if e.dirty then (b, e) :: acc else acc) cache [] in
  writeback_many dirty;
  let flushed = flush_device () in
  match consume_wb_err () with Error _ as e -> e | Ok () -> flushed

let sync_blocks blocks =
  let dirty =
    List.filter_map
      (fun b ->
        match Hashtbl.find_opt cache b with
        | Some e when e.dirty -> Some (b, e)
        | Some _ | None -> None)
      (List.sort_uniq compare blocks)
  in
  writeback_many dirty;
  let flushed = flush_device () in
  match consume_wb_err () with Error _ as e -> e | Ok () -> flushed

(* Durability crosscheck for the chaos soak: re-read every clean cached
   block straight from the device and byte-compare against the cache.
   Right after a successful [sync] every block is clean, so a non-zero
   mismatch count means data was lost or corrupted on its way to
   stable storage. Runs in polling mode too (after [Kernel.run]
   returns). Returns [(blocks_checked, mismatches)]. *)
let verify_cache_against_device () =
  let entries = Hashtbl.fold (fun b e acc -> (b, e) :: acc) cache [] in
  let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  let scratch = Ostd.Frame.alloc ~untyped:true () in
  let want = Bytes.create block_size in
  let got = Bytes.create block_size in
  let checked = ref 0 in
  let mismatches = ref 0 in
  List.iter
    (fun (blockno, e) ->
      if not e.dirty then begin
        let bio =
          make_bio Read ~sector:(blockno * sectors_per_block) ~frame:scratch ~len:block_size ()
        in
        match submit_and_wait bio with
        | Ok () ->
          incr checked;
          Ostd.Untyped.read_bytes e.cframe ~off:0 ~buf:want ~pos:0 ~len:block_size;
          Ostd.Untyped.read_bytes scratch ~off:0 ~buf:got ~pos:0 ~len:block_size;
          if not (Bytes.equal want got) then incr mismatches
        | Error _ ->
          (* Can't read it back at all: that is a mismatch with stable
             storage as far as durability is concerned. *)
          incr checked;
          incr mismatches
      end)
    entries;
  Ostd.Frame.drop scratch;
  (!checked, !mismatches)
