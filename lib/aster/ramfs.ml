type node =
  | File of { cache : Page_cache.t; mutable len : int }
  | Directory of { mutable entries : (string * Vfs.inode) list }
  | Symlink of { mutable target : string }

type Vfs.priv += Ram of node

let node_of i =
  match i.Vfs.priv with
  | Ram n -> n
  | _ -> Ostd.Panic.panic "ramfs: foreign inode"

let rec ops =
  {
    Vfs.default_ops with
    lookup =
      (fun dir name ->
        match node_of dir with
        | Directory d -> List.assoc_opt name d.entries
        | File _ | Symlink _ -> None);
    create =
      (fun dir name kind ~mode ->
        match node_of dir with
        | File _ | Symlink _ -> Error Errno.enotdir
        | Directory d ->
          if List.mem_assoc name d.entries then Error Errno.eexist
          else begin
            let inode = Vfs.make_inode ~fsname:"ramfs" ~kind ~mode ~ops () in
            (inode.Vfs.priv <-
               (match kind with
               | Vfs.Dir -> Ram (Directory { entries = [] })
               | Vfs.Lnk -> Ram (Symlink { target = "" })
               | Vfs.Reg | Vfs.Fifo | Vfs.Sock | Vfs.Chr ->
                 Ram (File { cache = Page_cache.create (); len = 0 })));
            d.entries <- d.entries @ [ (name, inode) ];
            Vfs.touch_mtime dir;
            Ok inode
          end);
    unlink =
      (fun dir name ->
        match node_of dir with
        | File _ | Symlink _ -> Error Errno.enotdir
        | Directory d -> (
          match List.assoc_opt name d.entries with
          | None -> Error Errno.enoent
          | Some child ->
            (match node_of child with
            | Directory cd when cd.entries <> [] -> Error Errno.enotempty
            | _ ->
              child.Vfs.nlink <- child.Vfs.nlink - 1;
              (* Last link gone: release the backing frames. *)
              (match node_of child with
              | File st when child.Vfs.nlink <= 0 -> Page_cache.destroy st.cache
              | File _ | Directory _ | Symlink _ -> ());
              d.entries <- List.remove_assoc name d.entries;
              Vfs.dcache_invalidate dir name;
              Vfs.touch_mtime dir;
              Ok ())
            |> fun r -> r));
    readdir =
      (fun dir ->
        match node_of dir with Directory d -> d.entries | File _ | Symlink _ -> []);
    read =
      (fun f ~pos ~buf ~boff ~len ->
        match node_of f with
        | Directory _ -> Error Errno.eisdir
        | Symlink _ -> Error Errno.einval
        | File st ->
          if pos >= st.len then Ok 0
          else begin
            let n = min len (st.len - pos) in
            Page_cache.read st.cache ~pos ~buf ~boff ~len:n;
            Ok n
          end);
    write =
      (fun f ~pos ~buf ~boff ~len ->
        match node_of f with
        | Directory _ -> Error Errno.eisdir
        | Symlink _ -> Error Errno.einval
        | File st ->
          Page_cache.write st.cache ~pos ~buf ~boff ~len;
          if pos + len > st.len then st.len <- pos + len;
          f.Vfs.size <- st.len;
          Vfs.touch_mtime f;
          Ok len);
    truncate =
      (fun f n ->
        match node_of f with
        | Directory _ -> Error Errno.eisdir
        | Symlink _ -> Error Errno.einval
        | File st ->
          Page_cache.truncate st.cache n;
          st.len <- n;
          f.Vfs.size <- n;
          Vfs.touch_mtime f;
          Ok ());
    rename =
      (fun src_dir src_name dst_dir dst_name ->
        match (node_of src_dir, node_of dst_dir) with
        | Directory sd, Directory dd -> (
          match List.assoc_opt src_name sd.entries with
          | None -> Error Errno.enoent
          | Some child ->
            sd.entries <- List.remove_assoc src_name sd.entries;
            dd.entries <- (dst_name, child) :: List.remove_assoc dst_name dd.entries;
            Vfs.dcache_invalidate src_dir src_name;
            Vfs.dcache_invalidate dst_dir dst_name;
            Vfs.touch_mtime src_dir;
            Vfs.touch_mtime dst_dir;
            Ok ())
        | _ -> Error Errno.enotdir);
    link =
      (fun dir name target ->
        match node_of dir with
        | File _ | Symlink _ -> Error Errno.enotdir
        | Directory d ->
          if List.mem_assoc name d.entries then Error Errno.eexist
          else begin
            target.Vfs.nlink <- target.Vfs.nlink + 1;
            d.entries <- d.entries @ [ (name, target) ];
            Ok ()
          end);
    symlink_target =
      (fun i -> match node_of i with Symlink s -> Some s.target | File _ | Directory _ -> None);
    set_symlink =
      (fun i target ->
        match node_of i with
        | Symlink s ->
          s.target <- target;
          Ok ()
        | File _ | Directory _ -> Error Errno.einval);
  }

let create_root () =
  let root = Vfs.make_inode ~fsname:"ramfs" ~kind:Vfs.Dir ~mode:0o755 ~ops () in
  root.Vfs.priv <- Ram (Directory { entries = [] });
  root

let file_data i =
  match node_of i with
  | File st ->
    let out = Bytes.create st.len in
    Page_cache.read st.cache ~pos:0 ~buf:out ~boff:0 ~len:st.len;
    out
  | Directory _ | Symlink _ -> Ostd.Panic.panic "ramfs.file_data: not a regular file"

let file_cache i =
  match node_of i with
  | File st -> Some st.cache
  | Directory _ | Symlink _ -> None

(* Zero-copy sendfile source: a pinned view of up to [len] bytes at
   [pos], clamped to the file size like ops.read. [None] at (or past)
   EOF, and for anything that is not a RamFS regular file. *)
let file_view i ~pos ~len =
  match node_of i with
  | File st ->
    if pos >= st.len || len <= 0 then None
    else begin
      let n = min len (st.len - pos) in
      let buf, pins = Page_cache.read_view st.cache ~pos ~len:n in
      Some (buf, n, pins)
    end
  | Directory _ | Symlink _ -> None
