(* Buffer layout: descriptor (24 bytes, incl. the chain link at off 16)
   at offset 0, packet data at 64. Buffers span several pages so
   GSO-sized frames fit. *)
let data_off = 64

let buf_pages = 5

let data_cap = (buf_pages * Machine.Phys.page_size) - data_off

let unused_marker = 0xFFFF

let desc_len = 0
let desc_status = 4
let desc_data = 8
let desc_next = 16
let desc_done_ts = 24 (* device-written completion timestamp (cycles) *)

(* One individual resubmission after a mid-burst failure; then give up
   and report the frame to the stack (TCP repairs by retransmission). *)
let tx_max_tries = 2

type buf = {
  stream : Ostd.Dma.Stream.t;
  pooled : bool;
  pkt : Packet.t option; (* TX only: for error reporting upstack *)
  mutable tries : int;
  mutable epoch : int; (* bumped per (re)submission; stale deadlines skip *)
  mutable issued : int64; (* first doorbell for this frame; 0 = never *)
}

type state = {
  stack : Netstack.t;
  window : Ostd.Io_mem.t;
  dev_id : int;
  pool : Ostd.Dma.Pool.t;
  mutable tx_pending : buf list;
  mutable rx_posted : buf list;
  mutable ntx : int;
  mutable nrx : int;
  mutable polling : bool; (* NAPI: a poll chain is active, interrupts masked *)
}

let state : state option ref = ref None

let st () =
  match !state with
  | Some s -> s
  | None -> Ostd.Panic.panic "virtio-net driver not initialised"

let tx_packets () = match !state with Some s -> s.ntx | None -> 0

let rx_packets () = match !state with Some s -> s.nrx | None -> 0

let tx_in_flight () = match !state with Some s -> List.length s.tx_pending | None -> 0

let take_buf s ~pkt =
  if (Sim.Profile.get ()).Sim.Profile.dma_pooling then
    match Ostd.Dma.Pool.alloc s.pool with
    | Some stream -> { stream; pooled = true; pkt; tries = 0; epoch = 0; issued = 0L }
    | None ->
      Sim.Stats.incr "virtio_net.pool_exhausted";
      { stream = Ostd.Dma.Stream.map (Ostd.Frame.alloc ~pages:buf_pages ~untyped:true ()) ~dev:s.dev_id;
        pooled = false; pkt; tries = 0; epoch = 0; issued = 0L }
  else
    { stream = Ostd.Dma.Stream.map (Ostd.Frame.alloc ~pages:buf_pages ~untyped:true ()) ~dev:s.dev_id;
      pooled = false; pkt; tries = 0; epoch = 0; issued = 0L }

let release_buf s b =
  if b.pooled then Ostd.Dma.Pool.release s.pool b.stream else Ostd.Dma.Stream.unmap b.stream

let frame_of b = Ostd.Dma.Stream.frame b.stream

let post_rx s =
  let b = take_buf s ~pkt:None in
  let f = frame_of b in
  Ostd.Untyped.write_u32 f ~off:desc_len data_cap;
  Ostd.Untyped.write_u32 f ~off:desc_status unused_marker;
  Ostd.Untyped.write_u64 f ~off:desc_data (Int64.of_int (Ostd.Dma.Stream.paddr b.stream + data_off));
  let ring_was_empty = s.rx_posted = [] in
  s.rx_posted <- s.rx_posted @ [ b ];
  (* Reposting into a non-empty RX ring is a ring update, not a kick. *)
  if ring_was_empty then
    Ostd.Io_mem.doorbell s.window ~off:Machine.Virtio_net.reg_queue_rx
      (Int64.of_int (Ostd.Dma.Stream.paddr b.stream))
  else begin
    if not (Netstack.is_host s.stack) then Sim.Cost.charge_ring_update ();
    Machine.Mmio.write
      ~addr:(Ostd.Io_mem.base s.window + Machine.Virtio_net.reg_queue_rx)
      ~len:8
      (Int64.of_int (Ostd.Dma.Stream.paddr b.stream))
  end

(* Build the DMA descriptor for one outgoing frame, data copied in,
   chain link zeroed; [link] stitches chains afterwards. Does not ring
   the doorbell. *)
let prepare_tx s pkt =
  let encoded = Packet.encode pkt in
  let len = Bytes.length encoded in
  if len > data_cap then Ostd.Panic.panic "virtio-net: packet exceeds buffer";
  Netstack.charge s.stack 500;
  let b = take_buf s ~pkt:(Some pkt) in
  let f = frame_of b in
  (* Copy into the DMA buffer: a real data movement. *)
  if not (Netstack.is_host s.stack) then Sim.Cost.charge_memcpy len;
  Ostd.Untyped.write_bytes f ~off:data_off ~buf:encoded ~pos:0 ~len;
  Ostd.Untyped.write_u32 f ~off:desc_len len;
  Ostd.Untyped.write_u32 f ~off:desc_status unused_marker;
  Ostd.Untyped.write_u64 f ~off:desc_data (Int64.of_int (Ostd.Dma.Stream.paddr b.stream + data_off));
  Ostd.Untyped.write_u64 f ~off:desc_next 0L;
  Ostd.Untyped.write_u64 f ~off:desc_done_ts 0L;
  s.ntx <- s.ntx + 1;
  (* Span-ownership conservation: one creation count per span-owned
     frame. Retries reuse this buffer via [submit_one] without a second
     prepare, so the count stays exactly-once; every frame must
     eventually count span.tx_done (reap success, give-up, or
     quarantine). *)
  (match pkt.Packet.span with 0 -> () | _ -> Sim.Stats.incr "span.tx_created");
  b

let link prev next =
  Ostd.Untyped.write_u64 (frame_of prev) ~off:desc_next
    (Int64.of_int (Ostd.Dma.Stream.paddr next.stream))

(* Ring the TX doorbell for a chain head. With the batched pipeline the
   driver uses virtio event suppression: kick only an idle device (full
   VM-exit cost); while it is busy, adding descriptors is a cheap ring
   update and the device keeps consuming. The unbatched baseline is the
   naive driver: every frame pays the full kick — exactly the per-packet
   doorbell economy the TX plug exists to amortise. [device_idle] must
   be sampled before the buffers are added to [s.tx_pending]. *)
let ring s ~device_idle head =
  let head_paddr = Int64.of_int (Ostd.Dma.Stream.paddr head.stream) in
  if device_idle || not (Sim.Profile.get ()).Sim.Profile.net_tx_batching then begin
    Sim.Stats.incr "net.doorbell";
    Ostd.Io_mem.doorbell s.window ~off:Machine.Virtio_net.reg_queue_tx head_paddr
  end
  else begin
    Sim.Stats.incr "net.notify_suppressed";
    if not (Netstack.is_host s.stack) then Sim.Cost.charge_ring_update ();
    Machine.Mmio.write
      ~addr:(Ostd.Io_mem.base s.window + Machine.Virtio_net.reg_queue_tx)
      ~len:8 head_paddr
  end

(* Timeout path: the device never wrote a status word for these buffers
   (a stuck or hostile NIC). Quarantine them — unmap the stream without
   ever returning it to the pool, so a late DMA faults at the IOMMU
   instead of landing in reused memory. The leaked pool slots are the
   price of that safety, counted under [net.pool_leaked] so /proc/kstat
   makes the shrinkage observable. The frames themselves are reported
   upstack and repaired by retransmission. *)
let tx_deadline_cycles n = Sim.Clock.us (500. +. (20. *. float_of_int n))

let arm_tx_deadline s bufs =
  let watched = List.map (fun b -> (b, b.epoch)) bufs in
  ignore
    (Sim.Events.schedule_after
       (tx_deadline_cycles (List.length bufs))
       (fun () ->
         List.iter
           (fun (b, epoch) ->
             if
               b.epoch = epoch
               && List.memq b s.tx_pending
               && Ostd.Untyped.read_u32 (frame_of b) ~off:desc_status = unused_marker
             then begin
               s.tx_pending <- List.filter (fun x -> not (x == b)) s.tx_pending;
               Sim.Stats.incr "virtio_net.quarantined";
               if b.pooled then Sim.Stats.incr "net.pool_leaked";
               Ostd.Dma.Stream.unmap b.stream;
               match b.pkt with
               | Some p ->
                 if p.Packet.span > 0 then Sim.Stats.incr "span.tx_done";
                 Netstack.tx_error s.stack p
               | None -> ()
             end)
           watched))

let submit_one s b =
  b.epoch <- b.epoch + 1;
  if Int64.equal b.issued 0L then b.issued <- Sim.Clock.now ();
  let device_idle = s.tx_pending = [] in
  s.tx_pending <- s.tx_pending @ [ b ];
  ring s ~device_idle b;
  arm_tx_deadline s [ b ]

let transmit s pkt = submit_one s (prepare_tx s pkt)

(* Scatter-gather submission: one descriptor chain, one doorbell, and —
   on the device side — one completion interrupt for the whole burst. *)
let submit_many s pkts =
  match List.map (prepare_tx s) pkts with
  | [] -> ()
  | head :: _ as bufs ->
    let rec link_all = function
      | a :: (b :: _ as tl) ->
        link a b;
        link_all tl
      | _ -> ()
    in
    link_all bufs;
    List.iter
      (fun b ->
        b.epoch <- b.epoch + 1;
        if Int64.equal b.issued 0L then b.issued <- Sim.Clock.now ())
      bufs;
    let device_idle = s.tx_pending = [] in
    s.tx_pending <- s.tx_pending @ bufs;
    ring s ~device_idle head;
    arm_tx_deadline s bufs

(* A mid-burst transmit error splits the burst: the failing frame is
   resubmitted individually (its own descriptor, its own doorbell
   economy); its neighbours' completions are untouched. After
   [tx_max_tries] the driver gives up and reports the frame upstack. *)
let retry_or_give_up s b =
  if b.tries < tx_max_tries then begin
    b.tries <- b.tries + 1;
    Sim.Stats.incr "net.burst_split";
    Sim.Stats.incr "degrade.retried.net_tx";
    let f = frame_of b in
    Ostd.Untyped.write_u32 f ~off:desc_status unused_marker;
    Ostd.Untyped.write_u64 f ~off:desc_next 0L;
    submit_one s b
  end
  else begin
    Sim.Stats.incr "degrade.gave_up.net_tx";
    (match b.pkt with
    | Some p ->
      if p.Packet.span > 0 then Sim.Stats.incr "span.tx_done";
      Netstack.tx_error s.stack p
    | None -> ());
    release_buf s b
  end

(* One bottom-half pass: reap TX completions, deliver RX arrivals.
   Returns how many descriptors it serviced so the NAPI loop can decide
   whether to keep polling. *)
let reap_once s =
  let done_tx, still_tx =
    List.partition (fun b -> Ostd.Untyped.read_u32 (frame_of b) ~off:desc_status <> unused_marker)
      s.tx_pending
  in
  s.tx_pending <- still_tx;
  List.iter
    (fun b ->
      if Ostd.Untyped.read_u32 (frame_of b) ~off:desc_status = 0 then begin
        (* The completion stamp is read unconditionally: the checked
           accessor charges its boundary check whether or not anyone is
           tracing, so span-on and span-off runs stay byte-identical. *)
        let ts = Ostd.Untyped.read_u64 (frame_of b) ~off:desc_done_ts in
        (* Span waterfall for the owning request: device service
           (doorbell → the device's completion stamp) and IRQ-delivery
           delay (stamp → this reap). One tx_done count per span-owned
           frame balances prepare_tx's tx_created. *)
        (match b.pkt with
        | Some p when p.Packet.span > 0 ->
          let now = Sim.Clock.now () in
          let t0 = if Int64.compare b.issued 0L > 0 then b.issued else p.Packet.span_t0 in
          if Int64.compare t0 0L > 0 then begin
            let s_end = if Int64.compare ts 0L > 0 then ts else now in
            Sim.Span.add_to p.Packet.span "net.service" t0 s_end;
            if Int64.compare ts 0L > 0 then Sim.Span.add_to p.Packet.span "net.irq" ts now
          end;
          Sim.Stats.incr "span.tx_done"
        | Some _ | None -> ());
        release_buf s b
      end
      else retry_or_give_up s b)
    done_tx;
  let done_rx, still_rx =
    List.partition (fun b -> Ostd.Untyped.read_u32 (frame_of b) ~off:desc_status <> unused_marker)
      s.rx_posted
  in
  s.rx_posted <- still_rx;
  let pkts =
    List.filter_map
      (fun b ->
        let used = Ostd.Untyped.read_u32 (frame_of b) ~off:desc_status in
        let data = Bytes.create used in
        if not (Netstack.is_host s.stack) then Sim.Cost.charge_memcpy used;
        Ostd.Untyped.read_bytes (frame_of b) ~off:data_off ~buf:data ~pos:0 ~len:used;
        s.nrx <- s.nrx + 1;
        release_buf s b;
        post_rx s;
        match Packet.decode data with
        | Some pkt -> Some pkt
        | None ->
          Sim.Stats.incr "virtio_net.bad_packet";
          None)
      done_rx
  in
  if (Sim.Profile.get ()).Sim.Profile.net_irq_coalesce then Netstack.rx_many s.stack pkts
  else List.iter (Netstack.rx s.stack) pkts;
  List.length done_tx + List.length done_rx

(* NAPI poll cadence while completions keep arriving. *)
let napi_poll_us = 3.0

(* NAPI proper: the interrupt line stays asserted (masked, from the
   CPU's point of view) for as long as each poll pass finds work; only
   an *empty* pass re-enables interrupts by acking the device. A bulk
   transfer is then serviced by one interrupt plus a chain of timer
   polls, and everything arriving meanwhile folds into the asserted
   line (counted as net.coalesced_rx by the device). *)
let rec napi_poll s =
  if reap_once s > 0 then begin
    Sim.Stats.incr "net.napi_poll";
    ignore (Sim.Events.schedule_after (Sim.Clock.us napi_poll_us) (fun () -> napi_poll s))
  end
  else begin
    s.polling <- false;
    if not (Netstack.is_host s.stack) then Sim.Cost.charge_ring_update ();
    Machine.Mmio.write
      ~addr:(Ostd.Io_mem.base s.window + Machine.Virtio_net.reg_irq_ack)
      ~len:4 1L
  end

(* Top of the bottom half. Coalesced mode enters the NAPI loop (at most
   one active per device); the unbatched baseline services exactly the
   one interrupt — per-completion interrupts, no ack protocol (the
   device auto-clears its line). *)
let reap () =
  let s = st () in
  if (Sim.Profile.get ()).Sim.Profile.net_irq_coalesce then begin
    if not s.polling then begin
      s.polling <- true;
      napi_poll s
    end
  end
  else ignore (reap_once s)

let rx_ring_depth = 16

let init stack =
  match Ostd.Bus_probe.find `Net with
  | None -> Ostd.Panic.panic "virtio-net: no device on the bus"
  | Some dev ->
    let window =
      match
        Ostd.Io_mem.acquire ~base:dev.Ostd.Bus_probe.mmio_base ~size:dev.Ostd.Bus_probe.mmio_size
      with
      | Ok w -> w
      | Error e -> Ostd.Panic.panic e
    in
    let s =
      {
        stack;
        window;
        dev_id = dev.Ostd.Bus_probe.dev_id;
        pool = Ostd.Dma.Pool.create ~dev:dev.Ostd.Bus_probe.dev_id ~buf_pages ~count:256;
        tx_pending = [];
        rx_posted = [];
        ntx = 0;
        nrx = 0;
        polling = false;
      }
    in
    state := Some s;
    let line = Ostd.Irq.claim ~vector:dev.Ostd.Bus_probe.vector ~name:"virtio-net" () in
    Ostd.Irq.set_handler line (fun () ->
        Sim.Stats.incr "net.irq";
        Softirq.raise_softirq reap);
    Ostd.Irq.bind_device line ~dev:s.dev_id;
    for _ = 1 to rx_ring_depth do
      post_rx s
    done;
    Netstack.set_ext_tx stack (transmit s);
    Netstack.set_ext_tx_many stack (submit_many s)
