(* Buffer layout: descriptor (40 bytes, incl. the chain link at off 16
   and the TSO record at off 32) at offset 0, packet data at 64. Buffers
   come in two sizes: the historical 5-page buffers carry MTU-scale
   frames (all RX postings — the device splits super-segments before the
   wire, so received frames never exceed one MSS — and small TX), and
   with [tcp_gso] a separate large geometry carries super-segment TX
   descriptors of up to gso_max_size. Sizing to the frame matters on a
   64 MiB machine: 17-page buffers for every ACK and RX slot would
   exhaust physical memory on long runs. The software baseline never
   sees the large geometry at all, keeping its exact alloc behaviour. *)
let data_off = 64

let base_buf_pages = 5

let tso_buf_pages = 17 (* 17 * 4096 - 64 = 69568 >= 64 KiB + header *)

let unused_marker = 0xFFFF

let desc_len = 0
let desc_status = 4
let desc_data = 8
let desc_next = 16
let desc_done_ts = 24 (* device-written completion timestamp (cycles) *)

(* One individual resubmission after a mid-burst failure; then give up
   and report the frame to the stack (TCP repairs by retransmission). *)
let tx_max_tries = 2

type buf = {
  stream : Ostd.Dma.Stream.t;
  home : Ostd.Dma.Pool.t option; (* pool to return to; [None] = fresh map *)
  pkt : Packet.t option; (* TX only: for error reporting upstack *)
  mutable tries : int;
  mutable epoch : int; (* bumped per (re)submission; stale deadlines skip *)
  mutable issued : int64; (* first doorbell for this frame; 0 = never *)
}

(* GRO: an in-progress per-flow merge of in-order TCP data frames,
   held across NAPI polls and flushed as one super-segment. *)
type gro_pending = {
  g_first : Packet.t; (* carries seq, ports, span ownership *)
  mutable g_parts : Bytes.t list; (* payload chunks, reversed *)
  mutable g_nparts : int;
  mutable g_next_seq : int;
  mutable g_total : int;
  mutable g_last : Packet.t; (* freshest ack / window / PSH *)
}

type state = {
  stack : Netstack.t;
  window : Ostd.Io_mem.t;
  dev_id : int;
  pool : Ostd.Dma.Pool.t; (* 5-page buffers: RX ring + MTU-scale TX *)
  big_pool : Ostd.Dma.Pool.t option; (* 17-page super-segment TX; [tcp_gso] only *)
  base_cap : int;
  data_cap : int; (* largest TX payload any descriptor can carry *)
  gro : (int * int * int, gro_pending) Hashtbl.t; (* (src ip, sport, dport) *)
  mutable tx_pending : buf list;
  mutable rx_posted : buf list;
  mutable ntx : int;
  mutable nrx : int;
  mutable polling : bool; (* NAPI: a poll chain is active, interrupts masked *)
}

let state : state option ref = ref None

let st () =
  match !state with
  | Some s -> s
  | None -> Ostd.Panic.panic "virtio-net driver not initialised"

let tx_packets () = match !state with Some s -> s.ntx | None -> 0

let rx_packets () = match !state with Some s -> s.nrx | None -> 0

let tx_in_flight () = match !state with Some s -> List.length s.tx_pending | None -> 0

(* [len] is the encoded frame length the buffer must hold (0 for RX
   postings — wire frames are MTU-scale by construction). Only frames
   that overflow the base geometry draw the large buffers. *)
let take_buf s ~pkt ~len =
  let big = len > s.base_cap in
  let pages = if big then tso_buf_pages else base_buf_pages in
  let fresh () =
    { stream = Ostd.Dma.Stream.map (Ostd.Frame.alloc ~pages ~untyped:true ()) ~dev:s.dev_id;
      home = None; pkt; tries = 0; epoch = 0; issued = 0L }
  in
  let from_pool p =
    match Ostd.Dma.Pool.alloc p with
    | Some stream -> { stream; home = Some p; pkt; tries = 0; epoch = 0; issued = 0L }
    | None ->
      Sim.Stats.incr "virtio_net.pool_exhausted";
      fresh ()
  in
  if (Sim.Profile.get ()).Sim.Profile.dma_pooling then
    match (big, s.big_pool) with
    | false, _ -> from_pool s.pool
    | true, Some p -> from_pool p
    | true, None -> fresh ()
  else fresh ()

let release_buf _s b =
  match b.home with
  | Some p -> Ostd.Dma.Pool.release p b.stream
  | None -> Ostd.Dma.Stream.unmap b.stream

let frame_of b = Ostd.Dma.Stream.frame b.stream

let post_rx s =
  let b = take_buf s ~pkt:None ~len:0 in
  let f = frame_of b in
  Ostd.Untyped.write_u32 f ~off:desc_len s.base_cap;
  Ostd.Untyped.write_u32 f ~off:desc_status unused_marker;
  Ostd.Untyped.write_u64 f ~off:desc_data (Int64.of_int (Ostd.Dma.Stream.paddr b.stream + data_off));
  let ring_was_empty = s.rx_posted = [] in
  s.rx_posted <- s.rx_posted @ [ b ];
  (* Reposting into a non-empty RX ring is a ring update, not a kick. *)
  if ring_was_empty then
    Ostd.Io_mem.doorbell s.window ~off:Machine.Virtio_net.reg_queue_rx
      (Int64.of_int (Ostd.Dma.Stream.paddr b.stream))
  else begin
    if not (Netstack.is_host s.stack) then Sim.Cost.charge_ring_update ();
    Machine.Mmio.write
      ~addr:(Ostd.Io_mem.base s.window + Machine.Virtio_net.reg_queue_rx)
      ~len:8
      (Int64.of_int (Ostd.Dma.Stream.paddr b.stream))
  end

(* Build the DMA descriptor for one outgoing frame, data copied in,
   chain link zeroed; [link] stitches chains afterwards. Does not ring
   the doorbell. *)
let prepare_tx s pkt =
  let encoded = Packet.encode pkt in
  let len = Bytes.length encoded in
  if len > s.data_cap then Ostd.Panic.panic "virtio-net: packet exceeds buffer";
  Netstack.charge s.stack 500;
  let b = take_buf s ~pkt:(Some pkt) ~len in
  let f = frame_of b in
  let guest = not (Netstack.is_host s.stack) in
  (if pkt.Packet.pins <> [] then begin
     (* Zero-copy sendfile: the payload already lives in pinned
        page-cache frames, so the CPU materialises only the 36-byte
        header — [Dma.Stream.fill] places the frame device-side without
        a copy charge, and the mapping cost is the per-packet zc map. *)
     if guest then begin
       Sim.Cost.charge_memcpy Packet.header_size;
       Ostd.Dma.charge_zc_map ();
       Sim.Stats.add "net.bytes_copied" Packet.header_size
     end;
     Ostd.Dma.Stream.fill b.stream ~off:data_off ~buf:encoded ~pos:0 ~len
   end
   else begin
     (* Copy into the DMA buffer: a real data movement. *)
     if guest then begin
       Sim.Cost.charge_memcpy len;
       Sim.Stats.add "net.bytes_copied" len
     end;
     Ostd.Untyped.write_bytes f ~off:data_off ~buf:encoded ~pos:0 ~len
   end);
  Ostd.Untyped.write_u32 f ~off:desc_len len;
  Ostd.Untyped.write_u32 f ~off:desc_status unused_marker;
  Ostd.Untyped.write_u64 f ~off:desc_data (Int64.of_int (Ostd.Dma.Stream.paddr b.stream + data_off));
  Ostd.Untyped.write_u64 f ~off:desc_next 0L;
  Ostd.Untyped.write_u64 f ~off:desc_done_ts 0L;
  (* TSO record: written (and read by the device) only when the profile
     models the offload, so the knobs-off path keeps the descriptor
     traffic of the software-segmentation baseline byte-identical. *)
  if (Sim.Profile.get ()).Sim.Profile.tcp_gso then
    Ostd.Untyped.write_u32 f ~off:Machine.Virtio_net.desc_gso
      (if len - Packet.header_size > Packet.mss then Packet.mss else 0);
  s.ntx <- s.ntx + 1;
  (* Span-ownership conservation: one creation count per span-owned
     frame. Retries reuse this buffer via [submit_one] without a second
     prepare, so the count stays exactly-once; every frame must
     eventually count span.tx_done (reap success, give-up, or
     quarantine). *)
  (match pkt.Packet.span with 0 -> () | _ -> Sim.Stats.incr "span.tx_created");
  b

let link prev next =
  Ostd.Untyped.write_u64 (frame_of prev) ~off:desc_next
    (Int64.of_int (Ostd.Dma.Stream.paddr next.stream))

(* Ring the TX doorbell for a chain head. With the batched pipeline the
   driver uses virtio event suppression: kick only an idle device (full
   VM-exit cost); while it is busy, adding descriptors is a cheap ring
   update and the device keeps consuming. The unbatched baseline is the
   naive driver: every frame pays the full kick — exactly the per-packet
   doorbell economy the TX plug exists to amortise. [device_idle] must
   be sampled before the buffers are added to [s.tx_pending]. *)
let ring s ~device_idle head =
  let head_paddr = Int64.of_int (Ostd.Dma.Stream.paddr head.stream) in
  if device_idle || not (Sim.Profile.get ()).Sim.Profile.net_tx_batching then begin
    Sim.Stats.incr "net.doorbell";
    Ostd.Io_mem.doorbell s.window ~off:Machine.Virtio_net.reg_queue_tx head_paddr
  end
  else begin
    Sim.Stats.incr "net.notify_suppressed";
    if not (Netstack.is_host s.stack) then Sim.Cost.charge_ring_update ();
    Machine.Mmio.write
      ~addr:(Ostd.Io_mem.base s.window + Machine.Virtio_net.reg_queue_tx)
      ~len:8 head_paddr
  end

(* Timeout path: the device never wrote a status word for these buffers
   (a stuck or hostile NIC). Quarantine them — unmap the stream without
   ever returning it to the pool, so a late DMA faults at the IOMMU
   instead of landing in reused memory. The leaked pool slots are the
   price of that safety, counted under [net.pool_leaked] so /proc/kstat
   makes the shrinkage observable. The frames themselves are reported
   upstack and repaired by retransmission. *)
let tx_deadline_cycles n = Sim.Clock.us (500. +. (20. *. float_of_int n))

let arm_tx_deadline s bufs =
  let watched = List.map (fun b -> (b, b.epoch)) bufs in
  ignore
    (Sim.Events.schedule_after
       (tx_deadline_cycles (List.length bufs))
       (fun () ->
         List.iter
           (fun (b, epoch) ->
             if
               b.epoch = epoch
               && List.memq b s.tx_pending
               && Ostd.Untyped.read_u32 (frame_of b) ~off:desc_status = unused_marker
             then begin
               s.tx_pending <- List.filter (fun x -> not (x == b)) s.tx_pending;
               Sim.Stats.incr "virtio_net.quarantined";
               if b.home <> None then Sim.Stats.incr "net.pool_leaked";
               Ostd.Dma.Stream.unmap b.stream;
               match b.pkt with
               | Some p ->
                 if p.Packet.span > 0 then Sim.Stats.incr "span.tx_done";
                 if p.Packet.pins <> [] then begin
                   if not (Netstack.is_host s.stack) then Ostd.Dma.charge_zc_unmap ();
                   Packet.release_pins p
                 end;
                 Netstack.tx_error s.stack p
               | None -> ()
             end)
           watched))

let submit_one s b =
  b.epoch <- b.epoch + 1;
  if Int64.equal b.issued 0L then b.issued <- Sim.Clock.now ();
  let device_idle = s.tx_pending = [] in
  s.tx_pending <- s.tx_pending @ [ b ];
  ring s ~device_idle b;
  arm_tx_deadline s [ b ]

let transmit s pkt = submit_one s (prepare_tx s pkt)

(* Scatter-gather submission: one descriptor chain, one doorbell, and —
   on the device side — one completion interrupt for the whole burst. *)
let submit_many s pkts =
  match List.map (prepare_tx s) pkts with
  | [] -> ()
  | head :: _ as bufs ->
    let rec link_all = function
      | a :: (b :: _ as tl) ->
        link a b;
        link_all tl
      | _ -> ()
    in
    link_all bufs;
    List.iter
      (fun b ->
        b.epoch <- b.epoch + 1;
        if Int64.equal b.issued 0L then b.issued <- Sim.Clock.now ())
      bufs;
    let device_idle = s.tx_pending = [] in
    s.tx_pending <- s.tx_pending @ bufs;
    ring s ~device_idle head;
    arm_tx_deadline s bufs

(* A mid-burst transmit error splits the burst: the failing frame is
   resubmitted individually (its own descriptor, its own doorbell
   economy); its neighbours' completions are untouched. After
   [tx_max_tries] the driver gives up and reports the frame upstack. *)
let retry_or_give_up s b =
  if b.tries < tx_max_tries then begin
    b.tries <- b.tries + 1;
    Sim.Stats.incr "net.burst_split";
    Sim.Stats.incr "degrade.retried.net_tx";
    let f = frame_of b in
    Ostd.Untyped.write_u32 f ~off:desc_status unused_marker;
    Ostd.Untyped.write_u64 f ~off:desc_next 0L;
    submit_one s b
  end
  else begin
    Sim.Stats.incr "degrade.gave_up.net_tx";
    (match b.pkt with
    | Some p ->
      if p.Packet.span > 0 then Sim.Stats.incr "span.tx_done";
      if p.Packet.pins <> [] then begin
        if not (Netstack.is_host s.stack) then Ostd.Dma.charge_zc_unmap ();
        Packet.release_pins p
      end;
      Netstack.tx_error s.stack p
    | None -> ());
    release_buf s b
  end

(* --- GRO: receive-side coalescing --------------------------------- *)

(* GRO rides the NAPI machinery (merges are held across polls and the
   idle poll is the backstop flush), so it needs both knobs. *)
let gro_on () =
  let p = Sim.Profile.get () in
  p.Sim.Profile.net_irq_coalesce && p.Sim.Profile.net_gro

let gro_key (p : Packet.t) = (p.Packet.src_ip, p.Packet.src_port, p.Packet.dst_port)

(* In-order TCP data with no connection-state flags is mergeable; SYN /
   FIN / RST and pure ACKs punch through (flushing the flow first so
   per-flow ordering is preserved — a FIN overtaking buffered data would
   wake the receiver into a premature EOF). *)
let gro_mergeable (p : Packet.t) =
  p.Packet.proto = Packet.Tcp
  && Bytes.length p.Packet.payload > 0
  && p.Packet.flags land (Packet.syn lor Packet.fin lor Packet.rst) = 0

(* Materialise a pending merge as one super-segment: first part's seq
   and span ownership, last part's ack / window / PSH, payloads
   concatenated. A single-part merge hands back the original packet. *)
let gro_materialise g =
  if g.g_nparts = 1 then g.g_first
  else begin
    Sim.Stats.add "net.gro_merged" (g.g_nparts - 1);
    {
      g.g_first with
      Packet.payload = Bytes.concat Bytes.empty (List.rev g.g_parts);
      flags = Packet.ack_flag lor (g.g_last.Packet.flags land Packet.psh);
      ack = g.g_last.Packet.ack;
      win = g.g_last.Packet.win;
    }
  end

let gro_flush_flow s key =
  match Hashtbl.find_opt s.gro key with
  | None -> None
  | Some g ->
    Hashtbl.remove s.gro key;
    Some (gro_materialise g)

let gro_flush_all s =
  let out = Hashtbl.fold (fun _ g acc -> gro_materialise g :: acc) s.gro [] in
  Hashtbl.reset s.gro;
  out

(* Feed one reaped wire frame through the merge engine; returns whatever
   must be delivered to the stack right now (possibly nothing: the frame
   joined a pending merge). Flushes on PSH, on reaching gso_max_size,
   and on any discontinuity in seq or flags. *)
let gro_rx s (p : Packet.t) =
  if not (gro_mergeable p) then
    match gro_flush_flow s (gro_key p) with Some m -> [ m; p ] | None -> [ p ]
  else begin
    let key = gro_key p in
    let len = Bytes.length p.Packet.payload in
    let cap = (Sim.Profile.get ()).Sim.Profile.gso_max_size in
    let fits g = p.Packet.seq = g.g_next_seq && g.g_total + len <= cap in
    match Hashtbl.find_opt s.gro key with
    | Some g when fits g ->
      g.g_parts <- p.Packet.payload :: g.g_parts;
      g.g_nparts <- g.g_nparts + 1;
      g.g_next_seq <- g.g_next_seq + len;
      g.g_total <- g.g_total + len;
      g.g_last <- p;
      if p.Packet.flags land Packet.psh <> 0 || g.g_total >= cap then
        match gro_flush_flow s key with Some m -> [ m ] | None -> []
      else []
    | prior ->
      let flushed =
        match prior with
        | Some _ -> ( match gro_flush_flow s key with Some m -> [ m ] | None -> [])
        | None -> []
      in
      if p.Packet.flags land Packet.psh <> 0 then flushed @ [ p ]
      else begin
        Hashtbl.replace s.gro key
          {
            g_first = p;
            g_parts = [ p.Packet.payload ];
            g_nparts = 1;
            g_next_seq = p.Packet.seq + len;
            g_total = len;
            g_last = p;
          };
        flushed
      end
  end

(* One bottom-half pass: reap TX completions, deliver RX arrivals.
   Returns how many descriptors it serviced so the NAPI loop can decide
   whether to keep polling. *)
let reap_once s =
  let done_tx, still_tx =
    List.partition (fun b -> Ostd.Untyped.read_u32 (frame_of b) ~off:desc_status <> unused_marker)
      s.tx_pending
  in
  s.tx_pending <- still_tx;
  List.iter
    (fun b ->
      if Ostd.Untyped.read_u32 (frame_of b) ~off:desc_status = 0 then begin
        (* The completion stamp is read unconditionally: the checked
           accessor charges its boundary check whether or not anyone is
           tracing, so span-on and span-off runs stay byte-identical. *)
        let ts = Ostd.Untyped.read_u64 (frame_of b) ~off:desc_done_ts in
        (* Span waterfall for the owning request: device service
           (doorbell → the device's completion stamp) and IRQ-delivery
           delay (stamp → this reap). One tx_done count per span-owned
           frame balances prepare_tx's tx_created. *)
        (match b.pkt with
        | Some p when p.Packet.span > 0 ->
          let now = Sim.Clock.now () in
          let t0 = if Int64.compare b.issued 0L > 0 then b.issued else p.Packet.span_t0 in
          if Int64.compare t0 0L > 0 then begin
            let s_end = if Int64.compare ts 0L > 0 then ts else now in
            Sim.Span.add_to p.Packet.span "net.service" t0 s_end;
            if Int64.compare ts 0L > 0 then Sim.Span.add_to p.Packet.span "net.irq" ts now
          end;
          Sim.Stats.incr "span.tx_done"
        | Some _ | None -> ());
        (* TX complete: the device has read the payload off the pinned
           page-cache frames, so the zero-copy pins release here. *)
        (match b.pkt with
        | Some p when p.Packet.pins <> [] ->
          if not (Netstack.is_host s.stack) then Ostd.Dma.charge_zc_unmap ();
          Packet.release_pins p
        | Some _ | None -> ());
        release_buf s b
      end
      else retry_or_give_up s b)
    done_tx;
  let done_rx, still_rx =
    List.partition (fun b -> Ostd.Untyped.read_u32 (frame_of b) ~off:desc_status <> unused_marker)
      s.rx_posted
  in
  s.rx_posted <- still_rx;
  let csum_off = (Sim.Profile.get ()).Sim.Profile.csum_rx_offload in
  let pkts =
    List.filter_map
      (fun b ->
        let used = Ostd.Untyped.read_u32 (frame_of b) ~off:desc_status in
        (* Checksum offload: the device verified the frame and wrote a
           verdict; the read is knob-gated so the software baseline's
           descriptor traffic is untouched. *)
        let verdict =
          if csum_off then
            Ostd.Untyped.read_u32 (frame_of b) ~off:Machine.Virtio_net.rx_desc_csum
          else Machine.Virtio_net.csum_verdict_ok
        in
        let data = Bytes.create used in
        if not (Netstack.is_host s.stack) then Sim.Cost.charge_memcpy used;
        Ostd.Untyped.read_bytes (frame_of b) ~off:data_off ~buf:data ~pos:0 ~len:used;
        s.nrx <- s.nrx + 1;
        release_buf s b;
        post_rx s;
        if csum_off && verdict <> Machine.Virtio_net.csum_verdict_ok then begin
          (* Same drop-and-retransmit semantics as the software checksum
             pass — the verification just happened in the NIC. *)
          Sim.Stats.incr "net.checksum_drop";
          Sim.Trace.emit Sim.Trace.Net "drop" (fun () ->
              Printf.sprintf "reason=checksum-hw len=%d" used);
          None
        end
        else
          match Packet.decode ~verify:(not csum_off) data with
          | Some pkt -> Some pkt
          | None ->
            Sim.Stats.incr "virtio_net.bad_packet";
            None)
      done_rx
  in
  if (Sim.Profile.get ()).Sim.Profile.net_irq_coalesce then begin
    let pkts = if gro_on () then List.concat_map (gro_rx s) pkts else pkts in
    Netstack.rx_many s.stack pkts
  end
  else List.iter (Netstack.rx s.stack) pkts;
  List.length done_tx + List.length done_rx

(* NAPI poll cadence while completions keep arriving. *)
let napi_poll_us = 3.0

(* NAPI proper: the interrupt line stays asserted (masked, from the
   CPU's point of view) for as long as each poll pass finds work; only
   an *empty* pass re-enables interrupts by acking the device. A bulk
   transfer is then serviced by one interrupt plus a chain of timer
   polls, and everything arriving meanwhile folds into the asserted
   line (counted as net.coalesced_rx by the device). *)
let rec napi_poll s =
  if reap_once s > 0 then begin
    Sim.Stats.incr "net.napi_poll";
    ignore (Sim.Events.schedule_after (Sim.Clock.us napi_poll_us) (fun () -> napi_poll s))
  end
  else begin
    (* Idle poll: the backstop GRO flush. Nothing more is arriving, so
       any held merges deliver now, before interrupts re-enable. *)
    if gro_on () then begin
      match gro_flush_all s with
      | [] -> ()
      | pending -> Netstack.rx_many s.stack pending
    end;
    s.polling <- false;
    if not (Netstack.is_host s.stack) then Sim.Cost.charge_ring_update ();
    Machine.Mmio.write
      ~addr:(Ostd.Io_mem.base s.window + Machine.Virtio_net.reg_irq_ack)
      ~len:4 1L
  end

(* Top of the bottom half. Coalesced mode enters the NAPI loop (at most
   one active per device); the unbatched baseline services exactly the
   one interrupt — per-completion interrupts, no ack protocol (the
   device auto-clears its line). *)
let reap () =
  let s = st () in
  if (Sim.Profile.get ()).Sim.Profile.net_irq_coalesce then begin
    if not s.polling then begin
      s.polling <- true;
      napi_poll s
    end
  end
  else ignore (reap_once s)

let rx_ring_depth = 16

let init stack =
  match Ostd.Bus_probe.find `Net with
  | None -> Ostd.Panic.panic "virtio-net: no device on the bus"
  | Some dev ->
    let window =
      match
        Ostd.Io_mem.acquire ~base:dev.Ostd.Bus_probe.mmio_base ~size:dev.Ostd.Bus_probe.mmio_size
      with
      | Ok w -> w
      | Error e -> Ostd.Panic.panic e
    in
    (* The base pool keeps the historical geometry — 5-page buffers,
       256 slots — so the software baseline's IOMMU/alloc behaviour is
       untouched. Super-segment TX draws on a second, smaller pool that
       exists only under [tcp_gso] and only when pooling is modelled at
       all: in-flight super-segments are bounded by the congestion
       window, not by packet count, so a few dozen slots suffice and
       the large buffers never dominate physical memory. *)
    let p = Sim.Profile.get () in
    let base_cap = (base_buf_pages * Machine.Phys.page_size) - data_off in
    let tso_cap = (tso_buf_pages * Machine.Phys.page_size) - data_off in
    let s =
      {
        stack;
        window;
        dev_id = dev.Ostd.Bus_probe.dev_id;
        pool =
          Ostd.Dma.Pool.create ~dev:dev.Ostd.Bus_probe.dev_id ~buf_pages:base_buf_pages
            ~count:256;
        big_pool =
          (if p.Sim.Profile.tcp_gso && p.Sim.Profile.dma_pooling then
             Some
               (Ostd.Dma.Pool.create ~dev:dev.Ostd.Bus_probe.dev_id ~buf_pages:tso_buf_pages
                  ~count:64)
           else None);
        base_cap;
        data_cap = (if p.Sim.Profile.tcp_gso then tso_cap else base_cap);
        gro = Hashtbl.create 8;
        tx_pending = [];
        rx_posted = [];
        ntx = 0;
        nrx = 0;
        polling = false;
      }
    in
    state := Some s;
    let line = Ostd.Irq.claim ~vector:dev.Ostd.Bus_probe.vector ~name:"virtio-net" () in
    Ostd.Irq.set_handler line (fun () ->
        Sim.Stats.incr "net.irq";
        Softirq.raise_softirq reap);
    Ostd.Irq.bind_device line ~dev:s.dev_id;
    for _ = 1 to rx_ring_depth do
      post_rx s
    done;
    Netstack.set_ext_tx stack (transmit s);
    Netstack.set_ext_tx_many stack (submit_many s)
