(** Network packets: a structured header plus payload, with a binary
    encoding for links that carry raw bytes (virtio-net DMA buffers). *)

type proto = Tcp | Udp

type t = {
  src_ip : int;
  dst_ip : int;
  proto : proto;
  src_port : int;
  dst_port : int;
  flags : int;
  seq : int;
  ack : int;
  win : int;
  payload : bytes;
  mutable span : int;
      (** kspan owner (0 = none): captured at [make], carried through
          the plug queue, burst splits and driver retries. *)
  mutable span_t0 : int64;  (** entry into the TX path (netstack stamp) *)
  mutable pins : Ostd.Frame.t list;
      (** Zero-copy TX: page-cache frames the payload references, dropped
          exactly once when the packet resolves (see {!release_pins}). *)
}

val syn : int
val ack_flag : int
val fin : int
val rst : int
val psh : int

val header_size : int
val mss : int
(** Maximum segment payload carried per packet. *)

val encode : t -> bytes
(** Serialize, stamping a 32-bit checksum over header and payload. *)

val decode : ?verify:bool -> bytes -> t option
(** [None] for truncated datagrams, unknown protocols, or a checksum
    mismatch (counted as [net.checksum_drop]) — corrupted frames are
    dropped so retransmission, not garbled data, is what the caller
    sees. [~verify:false] skips the software checksum pass: the
    checksum-offload path, where the device already verified the frame
    and the driver checked its verdict. *)

val release_pins : t -> unit
(** Drop every pinned frame exactly once (idempotent: the list empties
    on first call). Counted under [net.zc_unpin]. *)

val make :
  src_ip:int -> dst_ip:int -> proto:proto -> src_port:int -> dst_port:int ->
  ?flags:int -> ?seq:int -> ?ack:int -> ?win:int -> bytes -> t

val ip_of_string : string -> int
val string_of_ip : int -> string
