type sock_kind = Inet_stream | Inet_dgram | Unix_stream

type sock_state =
  | S_unbound
  | S_tcp_listener of Tcp.listener
  | S_tcp_conn of Tcp.conn
  | S_udp of Udp.socket
  | S_unix_listener of Unix_sock.listener
  | S_unix_conn of Unix_sock.endpoint

type sock = {
  kind : sock_kind;
  mutable st : sock_state;
  mutable bport : int option;  (* bound inet port *)
  mutable upath : string option;  (* bound unix path *)
}

type desc =
  | Inode_file of Vfs.inode
  | Pipe_read of Pipe.t
  | Pipe_write of Pipe.t
  | Socket of sock
  | Epoll of Epoll.t

type t = {
  mutable desc : desc;
  mutable pos : int;
  mutable flags : int;
  mutable refs : int;
  mutable wb_sample : int;
      (* errseq sample: writeback errors after this are this file's to
         observe at fsync, whoever else saw them first *)
}

let o_nonblock = 0o4000
let o_append = 0o2000
let o_creat = 0o100
let o_trunc = 0o1000
let o_excl = 0o200
let o_directory = 0o200000

let make desc ~flags = { desc; pos = 0; flags; refs = 1; wb_sample = Block.wb_errseq () }

(* The established-TCP view of a descriptor, for paths that need the
   connection itself rather than the generic write entry point (the
   zero-copy sendfile dispatch pins page-cache frames into the send). *)
let tcp_conn_of f =
  match f.desc with
  | Socket { st = S_tcp_conn c; _ } -> Some c
  | Inode_file _ | Pipe_read _ | Pipe_write _ | Socket _ | Epoll _ -> None

let get f = f.refs <- f.refs + 1

(* Last reference dropped. Beyond tearing the object down, [free] its
   pollable so every epoll interest list forgets the fd — Linux removes
   registrations when the file goes away (the EPOLLFREE path), so a
   plain close(2) is enough and no explicit EPOLL_CTL_DEL is owed. *)
let release f =
  match f.desc with
  | Inode_file _ -> ()
  | Pipe_read p ->
    Pollable.free (Pipe.rd_pollable p);
    Pipe.close_read p
  | Pipe_write p ->
    Pollable.free (Pipe.wr_pollable p);
    Pipe.close_write p
  | Epoll e ->
    Pollable.free (Epoll.pollable e);
    Epoll.close e
  | Socket s -> (
    match s.st with
    | S_unbound -> ()
    | S_tcp_listener _ -> () (* engine keeps listeners; fine for our workloads *)
    | S_tcp_conn c ->
      Pollable.free (Tcp.pollable c);
      Tcp.close c
    | S_udp u ->
      Pollable.free (Udp.pollable u);
      Udp.close u
    | S_unix_listener l ->
      Pollable.free (Unix_sock.listener_pollable l);
      Unix_sock.close_listener l
    | S_unix_conn ep ->
      Pollable.free (Unix_sock.pollable ep);
      Unix_sock.close ep)

let put f =
  f.refs <- f.refs - 1;
  if f.refs = 0 then release f

module Table = struct
  type file = t

  type t = { files : (int, file) Hashtbl.t; mutable next_hint : int }

  let create () = { files = Hashtbl.create 16; next_hint = 0 }

  let clone t =
    let t' = { files = Hashtbl.copy t.files; next_hint = t.next_hint } in
    Hashtbl.iter (fun _ f -> get f) t'.files;
    t'

  let lookup t fd =
    Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.fd_lookup;
    Hashtbl.find_opt t.files fd

  let install t f =
    let rec first_free fd = if Hashtbl.mem t.files fd then first_free (fd + 1) else fd in
    let fd = first_free 0 in
    Hashtbl.replace t.files fd f;
    fd

  let install_at t fd f =
    (match Hashtbl.find_opt t.files fd with Some old -> put old | None -> ());
    Hashtbl.replace t.files fd f

  let close t fd =
    match Hashtbl.find_opt t.files fd with
    | None -> Error Errno.ebadf
    | Some f ->
      Hashtbl.remove t.files fd;
      put f;
      Ok ()

  let close_all t =
    Hashtbl.iter (fun _ f -> put f) t.files;
    Hashtbl.reset t.files

  let count t = Hashtbl.length t.files

  (* fdinfo iteration; no lookup cost — observability stays free. *)
  let fold t f acc = Hashtbl.fold f t.files acc
end
