(** TCP engine.

    One engine per {!Netstack}. The guest engine is configured from the
    installed profile: the Asterinas profile models a smoltcp-style stack
    *without* congestion control (the paper's explanation for its network
    wins), while the Linux profile runs Reno-style slow start and
    congestion avoidance. Host-side client engines always run congestion
    control, like the real host's Linux stack.

    Blocking calls must run inside a task. *)

type engine

type conn

type listener

val create_engine : Netstack.t -> cc:bool -> engine

val listen : ?backlog:int -> engine -> port:int -> (listener, int) result
(** EADDRINUSE if the port is taken. [backlog] (default 128) caps the
    accept queue: SYNs arriving while it is full are dropped (counted
    as [tcp.listen_overflow]) and repaired by the client's handshake
    retransmit. *)

val accept : listener -> conn
(** Block until a connection is established. *)

val accept_opt : listener -> conn option
(** Non-blocking accept: [None] when the accept queue is empty. *)

val pending : listener -> int

val connect : engine -> dst_ip:int -> dst_port:int -> (conn, int) result
(** Block until the handshake completes (ECONNREFUSED if nothing
    listens). *)

val send :
  ?pins:Ostd.Frame.t list ->
  ?nonblock:bool ->
  conn -> buf:bytes -> pos:int -> len:int -> (int, int) result
(** Queue bytes; blocks while the send buffer is full. EPIPE after the
    peer reset or local close.

    [?pins] (zero-copy sendfile): page-cache frame handles the caller
    cloned for this write. Ownership transfers to the stack
    unconditionally — they ride with the final queued byte, attach to
    the packet that consumes it, and are dropped (counted as
    [net.zc_unpin]) when that packet's transmission resolves, or
    immediately on any error path. *)

val recv : ?nonblock:bool -> conn -> buf:bytes -> pos:int -> len:int -> (int, int) result
(** Block until data arrives; 0 at end-of-stream. [~nonblock:true]
    returns EAGAIN instead of blocking on an empty buffer. *)

val recv_available : conn -> int

val set_nodelay : conn -> unit
(** TCP_NODELAY: send sub-MSS segments immediately instead of holding
    them for in-flight data (what Redis and Nginx configure). *)

val close : conn -> unit

val abort : conn -> unit
(** Abortive (SO_LINGER-0 style) close: RST the peer and tear down
    immediately. The peer's readiness layer reports EPOLLERR|EPOLLHUP. *)

val pollable : conn -> Pollable.t
(** The connection's readiness seam; see DESIGN Â§4k for the level
    semantics. *)

val listener_pollable : listener -> Pollable.t
(** POLLIN while the accept queue is non-empty. *)

val peer_of : conn -> int * int
(** Remote (ip, port). *)

val local_port : conn -> int

val cwnd_bytes : conn -> int
(** Current congestion window ([max_int] when congestion control is
    off). *)

val tx_soft_errors : conn -> int
(** Frames this connection lost to driver give-ups or buffer
    quarantines (all repaired by retransmission). A mid-burst fault must
    land here on the owning socket, never on a neighbour that shared the
    burst. *)
