let softirqs : (unit -> unit) Queue.t = Queue.create ()

let work : (unit -> unit) Queue.t = Queue.create ()

(* Re-created on every install: a wait queue must never carry task
   references across a reboot (stale blocked tasks would be "woken" into
   the new scheduler). *)
let kworker_wq = ref (Ostd.Wait_queue.create ())

let drain_softirqs () =
  while not (Queue.is_empty softirqs) do
    let f = Queue.pop softirqs in
    (* Implicit kprof scope: bottom-half cycles attribute to "softirq"
       in whichever context drains them (irq exit or idle). *)
    Sim.Prof.scope "softirq" (fun () ->
        Sim.Span.enter_wake_ctx "softirq";
        Fun.protect ~finally:Sim.Span.exit_wake_ctx (fun () ->
            Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.softirq;
            Sim.Trace.emit Sim.Trace.Softirq "entry" (fun () ->
                Printf.sprintf "pending=%d" (Queue.length softirqs + 1));
            f ();
            Sim.Trace.emit Sim.Trace.Softirq "exit" (fun () -> "")))
  done

let raise_softirq f = Queue.push f softirqs

let queue_work f =
  Queue.push f work;
  ignore (Ostd.Wait_queue.wake_one !kworker_wq)

let pending () = Queue.length softirqs + Queue.length work

let kworker () =
  let wq = !kworker_wq in
  while true do
    Ostd.Wait_queue.sleep_until wq (fun () -> not (Queue.is_empty work));
    while not (Queue.is_empty work) do
      (Queue.pop work) ()
    done
  done

let install () =
  Queue.clear softirqs;
  Queue.clear work;
  kworker_wq := Ostd.Wait_queue.create ();
  Ostd.Irq.set_post_hook drain_softirqs;
  Ostd.Task.on_idle drain_softirqs;
  let t = Ostd.Task.spawn ~name:"kworker" kworker in
  (* Bottom-half work should preempt fair tasks promptly. *)
  Sched_policy.set_class t (Sched_policy.Rt 50)
