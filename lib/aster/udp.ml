type socket = {
  eng : engine;
  mutable port : int option;
  rxq : (int * int * Bytes.t) Queue.t; (* src ip, src port, payload *)
  wq : Ostd.Wait_queue.t;
  mutable closed : bool;
  pollable : Pollable.t; (* POLLIN on queued datagrams; always POLLOUT *)
}

and engine = {
  stack : Netstack.t;
  by_port : (int, socket) Hashtbl.t;
  mutable next_ephemeral : int;
}

let rx_limit = 256

let engine_rx eng (p : Packet.t) =
  match Hashtbl.find_opt eng.by_port p.Packet.dst_port with
  | Some sock when not sock.closed ->
    if Queue.length sock.rxq < rx_limit then begin
      Netstack.charge eng.stack (Sim.Cost.c ()).Sim.Profile.udp_packet;
      Queue.push (p.Packet.src_ip, p.Packet.src_port, p.Packet.payload) sock.rxq;
      ignore (Ostd.Wait_queue.wake_one sock.wq);
      Pollable.publish sock.pollable Pollable.pollin
    end
    else Sim.Stats.incr "udp.rx_dropped"
  | Some _ | None -> Sim.Stats.incr "udp.no_socket"

let create_engine stack =
  let eng = { stack; by_port = Hashtbl.create 32; next_ephemeral = 40000 } in
  Netstack.set_udp_rx stack (engine_rx eng);
  eng

let socket eng =
  let sock =
    {
      eng;
      port = None;
      rxq = Queue.create ();
      wq = Ostd.Wait_queue.create ();
      closed = false;
      pollable = Pollable.create (fun () -> 0);
    }
  in
  Pollable.set_level sock.pollable (fun () ->
      if sock.closed then Pollable.pollhup
      else
        (if Queue.is_empty sock.rxq then 0 else Pollable.pollin)
        (* A UDP socket can always take another datagram. *)
        lor Pollable.pollout);
  sock

let pollable sock = sock.pollable

let bind sock ~port =
  if Hashtbl.mem sock.eng.by_port port then Error Errno.eaddrinuse
  else begin
    sock.port <- Some port;
    Hashtbl.replace sock.eng.by_port port sock;
    Ok ()
  end

let bound_port sock = sock.port

let ensure_bound sock =
  match sock.port with
  | Some p -> p
  | None ->
    let rec pick () =
      let p = sock.eng.next_ephemeral in
      sock.eng.next_ephemeral <- sock.eng.next_ephemeral + 1;
      if Hashtbl.mem sock.eng.by_port p then pick () else p
    in
    let p = pick () in
    sock.port <- Some p;
    Hashtbl.replace sock.eng.by_port p sock;
    p

let sendto sock ~dst_ip ~dst_port ~buf ~pos ~len =
  if sock.closed then Error Errno.ebadf
  else begin
    let src_port = ensure_bound sock in
    Netstack.charge sock.eng.stack (Sim.Cost.c ()).Sim.Profile.udp_packet;
    Netstack.send sock.eng.stack
      (Packet.make ~src_ip:(Netstack.ip sock.eng.stack) ~dst_ip ~proto:Packet.Udp ~src_port
         ~dst_port (Bytes.sub buf pos len));
    Ok len
  end

let recvfrom ?(nonblock = false) sock ~buf ~pos ~len =
  if sock.closed then Error Errno.ebadf
  else if nonblock && Queue.is_empty sock.rxq then Error Errno.eagain
  else begin
    Ostd.Wait_queue.sleep_until sock.wq (fun () -> (not (Queue.is_empty sock.rxq)) || sock.closed);
    match Queue.take_opt sock.rxq with
    | None -> Error Errno.ebadf
    | Some (src_ip, src_port, payload) ->
      let n = min len (Bytes.length payload) in
      Bytes.blit payload 0 buf pos n;
      Ok (n, src_ip, src_port)
  end

let rx_queued sock = Queue.length sock.rxq

let close sock =
  if not sock.closed then begin
    sock.closed <- true;
    (match sock.port with Some p -> Hashtbl.remove sock.eng.by_port p | None -> ());
    ignore (Ostd.Wait_queue.wake_all sock.wq);
    Pollable.publish sock.pollable Pollable.pollhup
  end
