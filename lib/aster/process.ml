type status = Running | Zombie of int

type t = {
  pid_v : int;
  mutable parent : int;
  mutable children : int list;
  mutable mm_v : Mm.t;
  mutable fdt_v : File.Table.t;
  mutable cwd_v : Vfs.resolved;
  mutable ut : Ostd.User.t option;
  mutable status : status;
  exit_wq : Ostd.Wait_queue.t;
  mutable comm_v : string;
  mutable umask_v : int;
  mutable is_thread : bool; (* clone-with-shared-mm: skip teardown of shared state *)
  sigs : Signal.state;
  mutable task : Ostd.Task.t option;
}

type action = Ret of int64 | Exec_done | Terminated

let pid t = t.pid_v
let comm t = t.comm_v
let mm t = t.mm_v
let fdt t = t.fdt_v
let cwd t = t.cwd_v
let set_cwd t c = t.cwd_v <- c
let umask t = t.umask_v
let set_umask t m = t.umask_v <- m
let parent_pid t = t.parent

let table : (int, t) Hashtbl.t = Hashtbl.create 64

(* task tid -> process *)
let by_task : (int, t) Hashtbl.t = Hashtbl.create 64

let next_pid = ref 0

let handler : (t -> int -> int64 array -> action) ref =
  ref (fun _ _ _ -> Ostd.Panic.panic "Process: no syscall handler installed")

let child_resolver : (int64 -> (Ostd.User.uapi -> int) option) ref = ref (fun _ -> None)

let set_syscall_handler f = handler := f

let set_child_resolver f = child_resolver := f

let resolve_child tok = !child_resolver tok

let reset () =
  Hashtbl.reset table;
  Hashtbl.reset by_task;
  next_pid := 0

let by_pid p = Hashtbl.find_opt table p

let task t = t.task

let all () =
  Hashtbl.fold (fun _ p acc -> p :: acc) table []
  |> List.sort (fun a b -> compare a.pid_v b.pid_v)

let spawned_count () = !next_pid

let alive_count () =
  Hashtbl.fold (fun _ p n -> if p.status = Running then n + 1 else n) table 0

let current () =
  let tid = Ostd.Task.tid (Ostd.Task.current ()) in
  match Hashtbl.find_opt by_task tid with
  | Some p -> p
  | None -> Ostd.Panic.panic "Process.current: task has no process"

(* --- Exit and wait --- *)

let do_exit proc code =
  Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.exit_base;
  (match proc.ut with
  | Some ut -> Ostd.User.abandon ut
  | None -> ());
  proc.ut <- None;
  if not proc.is_thread then begin
    File.Table.close_all proc.fdt_v;
    Mm.destroy proc.mm_v
  end;
  proc.status <- Zombie code;
  (* Auto-reap zombie children (no one will wait for them now). *)
  List.iter
    (fun cpid ->
      match Hashtbl.find_opt table cpid with
      | Some c when c.status <> Running -> Hashtbl.remove table cpid
      | Some c -> c.parent <- 1
      | None -> ())
    proc.children;
  (match Hashtbl.find_opt table proc.parent with
  | Some parent -> ignore (Ostd.Wait_queue.wake_all parent.exit_wq)
  | None -> ());
  Ostd.Task.exit ()

(* Terminate another process on behalf of a signal: reap its resources
   and prevent its task from ever running again. *)
let terminate_other proc signal =
  (match proc.ut with Some ut -> Ostd.User.abandon ut | None -> ());
  proc.ut <- None;
  if not proc.is_thread then begin
    File.Table.close_all proc.fdt_v;
    Mm.destroy proc.mm_v
  end;
  proc.status <- Zombie (128 + signal);
  (match proc.task with Some task -> Ostd.Task.kill task | None -> ());
  match Hashtbl.find_opt table proc.parent with
  | Some parent -> ignore (Ostd.Wait_queue.wake_all parent.exit_wq)
  | None -> ()

(* --- The user-mode loop: the kernel side of Figure 3 in the paper. --- *)

let rec run_user proc resume =
  match proc.ut with
  | None -> ()
  | Some ut -> (
    (* CPU-accounting boundary: cycles charged while user code runs
       (between here and the next trap) accrue as utime; everything on
       the kernel side of the trap accrues as stime. *)
    Ostd.Task.account_user_entry ();
    let trap = Ostd.User.execute ut resume in
    Ostd.Task.account_kernel_entry ();
    match trap with
    | Ostd.User.Syscall { nr; args } -> (
      (* Auto-span boundary: with kspan auto mode on and no span active
         on this task, the syscall itself is the request. Opened before
         the tracepoints so the enter/exit records (and everything the
         handler emits) carry the span id, and before the IRQ delivery
         point so interrupt servicing that preempts this trap lands on
         the span's critical path. Zero virtual cost either way. *)
      let auto_span = Sim.Span.syscall_begin (Syscall_nr.name nr) in
      Strace.enter ~nr;
      let arg0 = if Array.length args > 0 then args.(0) else 0L in
      Sim.Trace.fire Sim.Trace.P_syscall_enter (fun () ->
          [| Int64.of_int nr; Int64.of_int proc.pid_v; arg0 |]);
      (* Interrupt delivery point: a busy process cannot starve IRQs —
         hardware would have preempted it, so fire everything due. *)
      ignore (Sim.Events.run_due ());
      (* Signal delivery point: pending terminating signals fire at the
         kernel boundary, like return-to-user delivery. *)
      (match Signal.take_deliverable proc.sigs with
      | Some signal -> do_exit proc (128 + signal)
      | None -> ());
      let t0 = Sim.Clock.now () in
      (* Journal-commit overlap for the syscall_exit probe ctx: sampled
         here so a commit that starts and finishes inside this syscall
         still counts. One int read; no virtual cost. *)
      let jseq0 = Jbd.commits () in
      let jbd0 = Jbd.is_committing () in
      (* Implicit kprof scope per syscall nr: kernel-side cycles of this
         call attribute to syscall.<name> under the calling task. *)
      match Sim.Prof.scope (Syscall_nr.scope_name nr) (fun () -> !handler proc nr args) with
      | Ret v ->
        (* Latency covers kernel work only; a handler that never
           returns (exit, fatal signal) records no exit event, exactly
           like strace. *)
        let cycles = Int64.sub (Sim.Clock.now ()) t0 in
        Strace.exit_ ~nr ~ret:v ~cycles;
        Sim.Trace.fire Sim.Trace.P_syscall_exit (fun () ->
            let jc = jbd0 || Jbd.is_committing () || Jbd.commits () > jseq0 in
            [|
              Int64.of_int nr; v;
              Int64.of_float (Sim.Clock.to_us cycles *. 1000.);
              Int64.of_int proc.pid_v; arg0;
              (if jc then 1L else 0L);
            |]);
        Sim.Span.syscall_end auto_span;
        run_user proc (Ostd.User.Sysret v)
      | Exec_done ->
        Sim.Span.syscall_end auto_span;
        run_user proc Ostd.User.Start
      | Terminated -> Sim.Span.syscall_end auto_span)
    | Ostd.User.Page_fault { vaddr; write } ->
      Sim.Trace.emit Sim.Trace.Pgfault "fault" (fun () ->
          Printf.sprintf "vaddr=%#x write=%b" vaddr write);
      if Sim.Prof.scope "pgfault" (fun () -> Mm.handle_fault proc.mm_v ~vaddr ~write) then
        run_user proc Ostd.User.Fault_resolved
      else begin
        Sim.Trace.emit Sim.Trace.Pgfault "segv" (fun () ->
            Printf.sprintf "vaddr=%#x write=%b" vaddr write);
        Logs.debug (fun m ->
            m "pid %d (%s): segfault at %#x" proc.pid_v proc.comm_v vaddr);
        do_exit proc 139
      end
    | Ostd.User.Exit code -> do_exit proc code)

let make_proc ~parent ~comm ~mm ~fdt ~cwd ~is_thread =
  incr next_pid;
  let proc =
    {
      pid_v = !next_pid;
      parent;
      children = [];
      mm_v = mm;
      fdt_v = fdt;
      cwd_v = cwd;
      ut = None;
      status = Running;
      exit_wq = Ostd.Wait_queue.create ();
      comm_v = comm;
      umask_v = 0o022;
      is_thread;
      sigs = Signal.fresh ();
      task = None;
    }
  in
  Hashtbl.replace table proc.pid_v proc;
  proc

let start_task proc body =
  let task =
    Ostd.Task.spawn ~name:proc.comm_v (fun () ->
        proc.ut <- Some (Ostd.User.create body (Mm.vmspace proc.mm_v));
        run_user proc Ostd.User.Start)
  in
  proc.task <- Some task;
  Hashtbl.replace by_task (Ostd.Task.tid task) proc;
  task

let spawn_kernel_style ~name body =
  let proc =
    make_proc ~parent:0 ~comm:name ~mm:(Mm.create ()) ~fdt:(File.Table.create ())
      ~cwd:(Vfs.root ()) ~is_thread:false
  in
  ignore (start_task proc (fun uapi -> body uapi));
  proc

let spawn_init ~name ~argv =
  match Uprog_registry.find name with
  | None -> Ostd.Panic.panicf "Process.spawn_init: no program %s" name
  | Some prog -> spawn_kernel_style ~name (fun uapi -> prog uapi argv)

let fork_current proc ~child =
  (* Mm.fork charges fork_base + per-page page-table copy. *)
  let mm = Mm.fork proc.mm_v in
  let cp =
    make_proc ~parent:proc.pid_v ~comm:proc.comm_v ~mm ~fdt:(File.Table.clone proc.fdt_v)
      ~cwd:proc.cwd_v ~is_thread:false
  in
  proc.children <- cp.pid_v :: proc.children;
  ignore (start_task cp child);
  cp.pid_v

let spawn_thread proc ~body =
  let cp =
    make_proc ~parent:proc.pid_v ~comm:proc.comm_v ~mm:proc.mm_v ~fdt:proc.fdt_v
      ~cwd:proc.cwd_v ~is_thread:true
  in
  proc.children <- cp.pid_v :: proc.children;
  Sim.Cost.charge 9000 (* clone(2): no address-space copy *);
  ignore (start_task cp body);
  cp.pid_v

let do_exec proc path argv =
  match Uprog_registry.find path with
  | None -> Error Errno.enoent
  | Some prog ->
    Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.exec_base;
    (match proc.ut with Some ut -> Ostd.User.abandon ut | None -> ());
    if not proc.is_thread then Mm.destroy proc.mm_v;
    proc.mm_v <- Mm.create ();
    proc.comm_v <- Uprog_registry.basename path;
    proc.ut <- Some (Ostd.User.create (fun uapi -> prog uapi argv) (Mm.vmspace proc.mm_v));
    Ok ()

let signals t = t.sigs

let deliver_signal proc signal =
  match Signal.post proc.sigs ~signal with
  | `Ignored | `Queued -> ()
  | `Terminate ->
    let self =
      match Ostd.Task.current_opt () with
      | Some t -> ( match Hashtbl.find_opt by_task (Ostd.Task.tid t) with
                    | Some p -> p.pid_v = proc.pid_v
                    | None -> false)
      | None -> false
    in
    if self then do_exit proc (128 + signal) else terminate_other proc signal

let wait_child proc =
  if proc.children = [] then Error Errno.echild
  else begin
    let find_zombie () =
      List.find_map
        (fun cpid ->
          match Hashtbl.find_opt table cpid with
          | Some c -> ( match c.status with Zombie code -> Some (c, code) | Running -> None)
          | None -> None)
        proc.children
    in
    Ostd.Wait_queue.sleep_until proc.exit_wq (fun () -> find_zombie () <> None);
    match find_zombie () with
    | Some (c, code) ->
      proc.children <- List.filter (fun p -> p <> c.pid_v) proc.children;
      Hashtbl.remove table c.pid_v;
      Ok (c.pid_v, code)
    | None -> Error Errno.echild
  end
