let eperm = 1
let enoent = 2
let esrch = 3
let eintr = 4
let eio = 5
let ebadf = 9
let echild = 10
let eagain = 11
let enomem = 12
let eacces = 13
let efault = 14
let ebusy = 16
let eexist = 17
let enotdir = 20
let eisdir = 21
let einval = 22
let enfile = 23
let emfile = 24
let enospc = 28
let espipe = 29
let erofs = 30
let epipe = 32
let enosys = 38
let enotempty = 39
let enotsock = 88
let eaddrinuse = 98
let econnrefused = 111
let enotconn = 107
let econnreset = 104
let eafnosupport = 97
let etimedout = 110

let names =
  [
    (eperm, "EPERM");
    (enoent, "ENOENT");
    (esrch, "ESRCH");
    (eintr, "EINTR");
    (eio, "EIO");
    (ebadf, "EBADF");
    (echild, "ECHILD");
    (eagain, "EAGAIN");
    (enomem, "ENOMEM");
    (eacces, "EACCES");
    (efault, "EFAULT");
    (ebusy, "EBUSY");
    (eexist, "EEXIST");
    (enotdir, "ENOTDIR");
    (eisdir, "EISDIR");
    (einval, "EINVAL");
    (enfile, "ENFILE");
    (emfile, "EMFILE");
    (enospc, "ENOSPC");
    (espipe, "ESPIPE");
    (erofs, "EROFS");
    (epipe, "EPIPE");
    (enosys, "ENOSYS");
    (enotempty, "ENOTEMPTY");
    (enotsock, "ENOTSOCK");
    (eaddrinuse, "EADDRINUSE");
    (econnrefused, "ECONNREFUSED");
    (enotconn, "ENOTCONN");
    (econnreset, "ECONNRESET");
    (eafnosupport, "EAFNOSUPPORT");
    (etimedout, "ETIMEDOUT");
  ]

let name e = match List.assoc_opt e names with Some n -> n | None -> Printf.sprintf "E%d" e
