let counts : (int, int ref) Hashtbl.t = Hashtbl.create 64

let small : (int, int ref) Hashtbl.t = Hashtbl.create 8

let reset () =
  Hashtbl.reset counts;
  Hashtbl.reset small

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.add tbl key (ref 1)

let record ~nr = bump counts nr

(* ktrace rebase: the counters above stay, but entry/exit also feed the
   trace ring and the latency histograms. Neither charges virtual
   cycles, so instrumented runs time identically. *)

let enter ~nr =
  record ~nr;
  Sim.Trace.emit Sim.Trace.Syscall "enter" (fun () ->
      Printf.sprintf "nr=%d name=%s" nr (Syscall_nr.name nr))

let exit_ ~nr ~ret ~cycles =
  let us = Sim.Clock.to_us cycles in
  Sim.Hist.observe "syscall" us;
  Sim.Hist.observe ("syscall." ^ Syscall_nr.name nr) us;
  Sim.Trace.emit Sim.Trace.Syscall "exit" (fun () ->
      let result =
        if Int64.compare ret 0L < 0 then
          Printf.sprintf "err=%s" (Errno.name (Int64.to_int (Int64.neg ret)))
        else Printf.sprintf "ret=%Ld" ret
      in
      Printf.sprintf "nr=%d name=%s %s lat_us=%.3f" nr (Syscall_nr.name nr) result us)

let record_size ~nr ~size = if size <= 8 then bump small nr

let count ~nr = match Hashtbl.find_opt counts nr with Some r -> !r | None -> 0

let small_writes () =
  let get nr = match Hashtbl.find_opt small nr with Some r -> !r | None -> 0 in
  get Syscall_nr.pwrite64 + get Syscall_nr.write

let top n =
  Hashtbl.fold (fun nr r acc -> (Syscall_nr.name nr, !r) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < n)
