(** Strace-style syscall accounting.

    The paper diagnoses the SQLite VACUUM gap with strace, finding
    frequent 4-byte pwrite64 calls; this module records per-syscall
    counts and per-size histograms so the benchmark harness can print the
    same diagnosis. *)

val reset : unit -> unit

val record : nr:int -> unit
(** Count only (no tracepoint); prefer [enter]/[exit_] on the
    dispatch path. *)

val enter : nr:int -> unit
(** Count the call and emit a [syscall:enter] tracepoint. *)

val exit_ : nr:int -> ret:int64 -> cycles:int64 -> unit
(** Emit a [syscall:exit] tracepoint (ret or errno, latency) and feed
    the ["syscall"] and ["syscall.<name>"] latency histograms with
    [cycles] converted to microseconds. Charges no virtual cycles. *)

val record_size : nr:int -> size:int -> unit
val count : nr:int -> int
val small_writes : unit -> int
(** pwrite64/write calls of at most 8 bytes. *)

val top : int -> (string * int) list
(** The n most frequent syscalls, by name. *)
