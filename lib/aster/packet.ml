type proto = Tcp | Udp

type t = {
  src_ip : int;
  dst_ip : int;
  proto : proto;
  src_port : int;
  dst_port : int;
  flags : int;
  seq : int;
  ack : int;
  win : int;
  payload : bytes;
  (* kspan ownership: the request span this segment belongs to
     (0 = none), captured when the packet is built so it survives the
     plug queue, burst splits and driver retries. [span_t0] marks entry
     into the TX path (stamped by the netstack). *)
  mutable span : int;
  mutable span_t0 : int64;
  (* Zero-copy TX: page-cache frames this packet's payload references,
     cloned when the view was built and dropped exactly once when the
     packet resolves (TX reap, driver give-up, quarantine, or loopback
     delivery). Empty for copied payloads. *)
  mutable pins : Ostd.Frame.t list;
}

let syn = 1
let ack_flag = 2
let fin = 4
let rst = 8
let psh = 16

(* The byte layout lives in {!Machine.Pktfmt}: the device model needs it
   for TSO splitting and checksum-offload verdicts, and keeping one
   definition is what guarantees the device and the stack agree. *)
let header_size = Machine.Pktfmt.header_size

let cksum_off = Machine.Pktfmt.cksum_off

let mss = Machine.Pktfmt.mss

let cksum = Machine.Pktfmt.cksum

let release_pins p =
  match p.pins with
  | [] -> ()
  | pins ->
    p.pins <- [];
    List.iter
      (fun f ->
        Sim.Stats.incr "net.zc_unpin";
        Ostd.Frame.drop f)
      pins

let encode p =
  let len = Bytes.length p.payload in
  let b = Bytes.create (header_size + len) in
  Bytes.set_int32_le b 0 (Int32.of_int p.src_ip);
  Bytes.set_int32_le b 4 (Int32.of_int p.dst_ip);
  Bytes.set b 8 (match p.proto with Tcp -> '\006' | Udp -> '\017');
  Bytes.set b 9 (Char.chr (p.flags land 0xff));
  Bytes.set_uint16_le b 10 p.src_port;
  Bytes.set_uint16_le b 12 p.dst_port;
  Bytes.set_int32_le b 16 (Int32.of_int p.seq);
  Bytes.set_int32_le b 20 (Int32.of_int p.ack);
  Bytes.set_int32_le b 24 (Int32.of_int p.win);
  Bytes.set_int32_le b 28 (Int32.of_int len);
  Bytes.blit p.payload 0 b header_size len;
  Bytes.set_int32_le b cksum_off (Int32.of_int (cksum b));
  b

(* [verify:false] is the checksum-offload path: the device already
   verified the frame and wrote its verdict, so the software pass is
   skipped — exactly the trust the csum_rx_offload knob models. *)
let decode ?(verify = true) b =
  if Bytes.length b < header_size then None
  else begin
    let u32 off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff in
    let len = u32 28 in
    if Bytes.length b < header_size + len then None
    else if verify && u32 cksum_off <> cksum (Bytes.sub b 0 (header_size + len)) then begin
      (* Damaged in flight. Dropping it is the graceful path: TCP's
         retransmit timer resends the segment, UDP callers accepted
         lossy delivery when they picked UDP. *)
      Sim.Stats.incr "net.checksum_drop";
      Sim.Trace.emit Sim.Trace.Net "drop" (fun () ->
          Printf.sprintf "reason=checksum len=%d" (Bytes.length b));
      None
    end
    else
      let proto = match Bytes.get b 8 with '\006' -> Some Tcp | '\017' -> Some Udp | _ -> None in
      match proto with
      | None -> None
      | Some proto ->
        Some
          {
            src_ip = u32 0;
            dst_ip = u32 4;
            proto;
            flags = Char.code (Bytes.get b 9);
            src_port = Bytes.get_uint16_le b 10;
            dst_port = Bytes.get_uint16_le b 12;
            seq = u32 16;
            ack = u32 20;
            win = u32 24;
            payload = Bytes.sub b header_size len;
            span = 0;
            span_t0 = 0L;
            pins = [];
          }
  end

let make ~src_ip ~dst_ip ~proto ~src_port ~dst_port ?(flags = 0) ?(seq = 0) ?(ack = 0)
    ?(win = 0) payload =
  {
    src_ip; dst_ip; proto; src_port; dst_port; flags; seq; ack; win; payload;
    span = Sim.Span.current (); span_t0 = 0L; pins = [];
  }

let ip_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
    (int_of_string a lsl 24) lor (int_of_string b lsl 16) lor (int_of_string c lsl 8)
    lor int_of_string d
  | _ -> invalid_arg ("Packet.ip_of_string: " ^ s)

let string_of_ip ip =
  Printf.sprintf "%d.%d.%d.%d" ((ip lsr 24) land 0xff) ((ip lsr 16) land 0xff)
    ((ip lsr 8) land 0xff) (ip land 0xff)
