(** Ext2-style file system on the block device.

    On-disk layout (4 KiB blocks): superblock, block bitmap, inode
    bitmap, inode table, write-ahead journal area, then data blocks.
    Inodes address data through 12 direct pointers, one indirect and one
    double-indirect block, like ext2 proper. All I/O goes through the
    {!Block} buffer cache; [fsync] forces a file's data to the device
    with a flush barrier and then commits the metadata transaction (with
    [ext2_journal] on in the profile — off, it syncs data and metadata
    blocks directly, with no atomicity across a crash). *)

val mkfs : unit -> unit
(** Format the registered block device (journal included when the
    profile enables it). *)

val mount : unit -> Vfs.inode
(** Read the superblock, replay the journal (profile permitting), and
    return the root inode. Panics if the device does not contain an
    ext2 image. *)

val sync_fs : unit -> (unit, int) result
(** The sync(2) back end: commit the running journal transaction,
    checkpoint, then write back and flush everything else. *)

val block_size : int
val max_file_blocks : int

(* Layout, exposed for the fsck-style checker and the crash harness. *)
val sb_block : int
val block_bitmap : int
val inode_bitmap : int
val inode_table_start : int
val inode_table_blocks : int
val journal_start : int
val journal_blocks : int
val first_data_block : int
val ninodes : int
val root_ino : int

val inodes_total : unit -> int
val free_blocks : unit -> int
val free_inodes : unit -> int
