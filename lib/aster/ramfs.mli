(** RamFS: an in-memory file system (the paper mounts one for lmdd and as
    the root). File contents live in OSTD untyped frames through
    {!Page_cache}, so user data is held in framework-managed memory with
    per-frame dirty metadata — never in plain OCaml buffers. *)

val create_root : unit -> Vfs.inode

val file_data : Vfs.inode -> bytes
(** Snapshot of a regular file's contents (testing). *)

val file_cache : Vfs.inode -> Page_cache.t option
(** The frame-backed page cache of a regular file. *)

val file_view : Vfs.inode -> pos:int -> len:int -> (bytes * int * Ostd.Frame.t list) option
(** Zero-copy read for sendfile-to-wire: [(data, n, pins)] where [n] is
    clamped to the file length and [pins] are cloned page-cache frames
    the caller must release (see {!Page_cache.read_view}). [None] at EOF
    or when the inode is not a RamFS regular file. *)
