(** Linux errno values (returned negated from syscalls, as in the ABI). *)

val eperm : int
val enoent : int
val esrch : int
val eintr : int
val eio : int
val ebadf : int
val echild : int
val eagain : int
val enomem : int
val eacces : int
val efault : int
val ebusy : int
val eexist : int
val enotdir : int
val eisdir : int
val einval : int
val enfile : int
val emfile : int
val enospc : int
val espipe : int
val erofs : int
val epipe : int
val enosys : int
val enotempty : int
val enotsock : int
val eaddrinuse : int
val econnrefused : int
val enotconn : int
val econnreset : int
val eafnosupport : int
val etimedout : int

val name : int -> string
(** [name 2] is ["ENOENT"]. *)
