(* JBD2-style write-ahead journal for ext2 metadata (and, with the
   data-journal knob, file data too).

   On-disk format, inside a block range the filesystem reserves:

   {v
     slot 0                 journal superblock:
                              off 0  u32  magic
                              off 4  u32  seq of the first live txn
     slot s                 descriptor:
                              off 0  u32  desc magic
                              off 4  u32  seq
                              off 8  u32  n (home blocks in this txn)
                              off 12 u32[n] home block numbers
     slot s+1 .. s+n        full-block content copies, in blockno order
     slot s+n+1             commit record:
                              off 0  u32  commit magic
                              off 4  u32  seq
                              off 8  u32  FNV-1a checksum of the content
   v}

   Barrier ordering at commit (the rules DESIGN.md §4g spells out):
   descriptor + content copies are made durable with a writeback +
   device flush (barrier 1) before the commit record is written with
   FUA (barrier 2). A transaction therefore either has a valid,
   checksummed commit record — and every one of its blocks — or it is
   torn and replay discards it wholesale. Home locations are pinned in
   the buffer cache from first touch until checkpoint, so no
   half-updated metadata block can reach its home ahead of its commit
   record.

   Concurrency is a handle gate rather than a mutex (commit must also
   run at early boot, before tasks exist): mutating fs operations run
   inside [with_handle], commit waits for open handles to drain and
   holds new ones out while it runs. *)

let jsb_magic = 0x4A42_4453 (* "JBDS" *)

let desc_magic = 0x4A42_4444

let commit_magic = 0x4A42_4443

let block_size = Block.block_size

(* Largest single transaction (home blocks per commit). Oversized
   transactions (data-journal mode with big writes) commit in chunks;
   each chunk is atomic on its own, which can split one file operation
   across transactions — a documented data=journal limitation.
   Metadata-only transactions are far smaller than this. *)
let max_txn = 24

(* --- Configuration and state --- *)

let jstart = ref 0

let jblocks = ref 0

let enabled = ref false

let data_mode = ref false

(* Sequence number of the next transaction to commit; on disk, the
   journal superblock holds the seq of the first live (unreplayed,
   uncheckpointed) transaction. *)
let seq = ref 1

let next_slot = ref 1

(* [running] holds the blocks dirtied since the last commit; [committed]
   holds blocks whose transaction is logged (commit record durable) but
   not yet checkpointed. A block the running transaction re-dirties
   while it sits in [committed] gets a FROZEN copy of its committed
   image (JBD2's frozen buffer): checkpoint writes the frozen bytes
   home, never the newer uncommitted ones in the cache. This keeps
   [touch] yield-free — critical, because it is called mid
   read-modify-write of bitmaps and counters; a checkpoint-on-touch
   would sleep on I/O there and let another task in half-way.

   Invariants: committed[b] = None  ⇒  b ∉ running (checkpoint uses the
   cache content, which is exactly the committed image);
   committed[b] = Some img  ⇒  b ∈ running (cache is newer; checkpoint
   must use [img]). Pinned = running ∪ committed. *)
let running : (int, unit) Hashtbl.t = Hashtbl.create 64

let committed : (int, Bytes.t option) Hashtbl.t = Hashtbl.create 64

let open_handles = ref 0

let committing = ref false

(* Observability accessors for the probe plane: whether a commit is in
   progress right now, and a monotonically increasing count of chunk
   commits so a syscall can tell whether any commit overlapped its
   lifetime (sample at entry, compare at exit). *)
let is_committing () = !committing

let commit_seq = ref 0

let commits () = !commit_seq

let gate_wq = ref (Ostd.Wait_queue.create ())

let recovery_rev : string list ref = ref []

let reset () =
  jstart := 0;
  jblocks := 0;
  enabled := false;
  data_mode := false;
  seq := 1;
  next_slot := 1;
  Hashtbl.reset running;
  Hashtbl.reset committed;
  open_handles := 0;
  committing := false;
  commit_seq := 0;
  gate_wq := Ostd.Wait_queue.create ();
  recovery_rev := []

let configure ~start ~blocks ~data =
  jstart := start;
  jblocks := blocks;
  data_mode := data;
  enabled := true;
  seq := 1;
  next_slot := 1;
  Hashtbl.reset running;
  Hashtbl.reset committed;
  recovery_rev := []

let disable_journal () = enabled := false

let is_enabled () = !enabled

let journals_data () = !enabled && !data_mode

let recovery_log () = List.rev !recovery_rev

let log_line fmt =
  Printf.ksprintf (fun s -> recovery_rev := s :: !recovery_rev) fmt

(* --- Raw journal-slot I/O (through the buffer cache) --- *)

let slot_block s = !jstart + s

let read_whole blockno =
  let b = Bytes.create block_size in
  Block.read_from_block blockno ~off:0 ~buf:b ~pos:0 ~len:block_size;
  b

let write_whole blockno b =
  Block.write_to_block blockno ~off:0 ~buf:b ~pos:0 ~len:block_size

let u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff

let put_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

(* FNV-1a, folded to 32 bits, seeded with the transaction seq so a
   stale commit record can never vouch for fresh content. *)
let checksum ~txn_seq contents =
  let h = ref 0x811c9dc5 in
  let fold c = h := (!h lxor c) * 0x01000193 land 0xffffffff in
  fold (txn_seq land 0xff);
  List.iter (fun b -> Bytes.iter (fun c -> fold (Char.code c)) b) contents;
  !h

(* --- Journal superblock --- *)

let write_jsb () =
  let b = Bytes.make block_size '\000' in
  put_u32 b 0 jsb_magic;
  put_u32 b 4 !seq;
  write_whole (slot_block 0) b;
  Block.sync_blocks [ slot_block 0 ]

(* mkfs: a fresh, empty journal. *)
let format () =
  seq := 1;
  next_slot := 1;
  Hashtbl.reset running;
  Hashtbl.reset committed;
  match write_jsb () with
  | Ok () -> ()
  | Error e -> Ostd.Panic.failf ~errno:e "jbd: cannot format journal"

(* --- Checkpoint ---

   Write every committed block to its home location, make that durable,
   then advance the journal tail (superblock seq) so the space can be
   reused. The tail moves only after the homes are on stable storage:
   a crash at any interior point replays the still-live transactions
   and converges to the same state. *)

let do_checkpoint () =
  if !enabled && (Hashtbl.length committed > 0 || !next_slot > 1) then
    Sim.Prof.scope "jbd" (fun () ->
        let homes =
          List.sort (fun (a, _) (b, _) -> compare a b)
            (Hashtbl.fold (fun b img acc -> (b, img) :: acc) committed [])
        in
        (* Frozen blocks first: their committed image goes straight to
           the device (the cache holds newer, uncommitted bytes and must
           stay pinned for the running transaction). *)
        List.iter
          (fun (b, img) ->
            match img with
            | None -> ()
            | Some bytes -> (
              match Block.write_through b bytes with
              | Ok () -> ()
              | Error e -> Ostd.Panic.failf ~errno:e "jbd: checkpoint writeback failed"))
          homes;
        let plain = List.filter_map (fun (b, img) -> if img = None then Some b else None) homes in
        List.iter Block.unpin plain;
        match Block.sync_blocks plain with
        | Error e ->
          (* Homes may not be durable: keep the journal live (re-pin,
             tail stays) so replay can still reconstruct them. *)
          List.iter Block.pin plain;
          Ostd.Panic.failf ~errno:e "jbd: checkpoint writeback failed"
        | Ok () ->
          Hashtbl.reset committed;
          next_slot := 1;
          (match write_jsb () with
          | Ok () -> ()
          | Error e -> Ostd.Panic.failf ~errno:e "jbd: checkpoint tail update failed");
          Sim.Stats.incr "jbd.checkpoint";
          Sim.Trace.emit Sim.Trace.Blk "jbd_checkpoint" (fun () ->
              Printf.sprintf "homes=%d seq=%d" (List.length homes) !seq))

(* --- Transactions --- *)

(* Record that a block is (about to be) dirtied under journal
   protection. Pinning stops writeback from racing its home location
   ahead of the commit record. *)
let touch blockno =
  if !enabled then begin
    if Hashtbl.mem running blockno then ()
    else begin
      (* A committed-but-not-checkpointed block being dirtied again:
         freeze its committed image so the eventual checkpoint writes
         that, not the new bytes, home. No I/O, no yield. *)
      (match Hashtbl.find_opt committed blockno with
      | Some None ->
        let img = read_whole blockno in
        Hashtbl.replace committed blockno (Some img);
        Sim.Stats.incr "jbd.frozen"
      | Some (Some _) | None -> ());
      Hashtbl.replace running blockno ();
      Block.pin blockno
    end
  end

let commit_chunk chunk =
  let span_t0 = Sim.Clock.now () in
  let n = List.length chunk in
  (* Make room: descriptor + n contents + commit record. *)
  if !next_slot + n + 2 > !jblocks then do_checkpoint ();
  if !next_slot + n + 2 > !jblocks then
    Ostd.Panic.panicf "jbd: transaction of %d blocks cannot fit the journal" n;
  let desc_slot = !next_slot in
  let desc = Bytes.make block_size '\000' in
  put_u32 desc 0 desc_magic;
  put_u32 desc 4 !seq;
  put_u32 desc 8 n;
  List.iteri (fun i b -> put_u32 desc (12 + (4 * i)) b) chunk;
  write_whole (slot_block desc_slot) desc;
  let contents = List.map read_whole chunk in
  List.iteri (fun i c -> write_whole (slot_block (desc_slot + 1 + i)) c) contents;
  (* Barrier 1: descriptor and content copies durable before the commit
     record can exist. *)
  let journal_slots = List.init (n + 1) (fun i -> slot_block (desc_slot + i)) in
  (match Block.sync_blocks journal_slots with
  | Ok () -> ()
  | Error e -> Ostd.Panic.failf ~errno:e "jbd: journal write failed");
  let commit_slot = desc_slot + n + 1 in
  let cb = Bytes.make block_size '\000' in
  put_u32 cb 0 commit_magic;
  put_u32 cb 4 !seq;
  put_u32 cb 8 (checksum ~txn_seq:!seq contents);
  write_whole (slot_block commit_slot) cb;
  (* Barrier 2: the commit record goes down FUA — it seals the
     transaction and must not linger in the device's volatile cache. *)
  (match Block.write_block_fua (slot_block commit_slot) with
  | Ok () -> ()
  | Error e -> Ostd.Panic.failf ~errno:e "jbd: commit record write failed");
  List.iter
    (fun b ->
      Hashtbl.remove running b;
      (* Any frozen image from an older transaction is superseded: the
         newly committed content is the one a checkpoint must write. *)
      Hashtbl.replace committed b None)
    chunk;
  Sim.Stats.incr "jbd.commit";
  (* kspan: an fsync span shows the whole commit — journal writes,
     barrier 1, and the FUA commit record — as one jbd.commit segment
     layered over the raw blk.* legs. *)
  Sim.Span.mark "jbd.commit" span_t0;
  incr commit_seq;
  Sim.Trace.emit Sim.Trace.Blk "jbd_commit" (fun () ->
      Printf.sprintf "seq=%d n=%d slot=%d" !seq n desc_slot);
  Sim.Trace.fire Sim.Trace.P_jbd_commit (fun () -> [| Int64.of_int !seq; Int64.of_int n |]);
  seq := !seq + 1;
  next_slot := commit_slot + 1

let rec chunks l =
  if List.length l <= max_txn then [ l ]
  else
    let rec split i acc rest =
      if i = 0 then (List.rev acc, rest)
      else
        match rest with [] -> (List.rev acc, []) | x :: tl -> split (i - 1) (x :: acc) tl
    in
    let hd, tl = split max_txn [] l in
    hd :: chunks tl

(* Commit the running transaction. Waits out open handles (mutating fs
   operations), so a commit never captures a half-done operation. *)
let commit () =
  if not !enabled then Ok ()
  else
    Sim.Prof.scope "jbd" (fun () ->
        (* One committer at a time; the flag is taken without yielding
           after the wait, so racing committers re-check and re-sleep. *)
        (match Ostd.Task.current_opt () with
        | Some _ -> Ostd.Wait_queue.sleep_until !gate_wq (fun () -> not !committing)
        | None -> ());
        committing := true;
        let release () =
          committing := false;
          ignore (Ostd.Wait_queue.wake_all !gate_wq)
        in
        (match Ostd.Task.current_opt () with
        | Some _ -> Ostd.Wait_queue.sleep_until !gate_wq (fun () -> !open_handles = 0)
        | None -> assert (!open_handles = 0));
        (* Ordered mode: every dirty data block goes to stable storage
           (journal-pinned metadata is skipped by the sync) before the
           transaction commits, so committed metadata never points at
           unwritten data — whichever file it belongs to. *)
        match Block.sync () with
        | Error _ as e ->
          release ();
          e
        | Ok () -> (
          match
            List.sort compare (Hashtbl.fold (fun b () acc -> b :: acc) running [])
          with
          | [] ->
            release ();
            Ok ()
          | blocks ->
            let r =
              try
                List.iter commit_chunk (chunks blocks);
                (* Lazy checkpointing: only under space pressure, and only
                   here, between transactions, where running is empty. *)
                if !next_slot > !jblocks / 2 then do_checkpoint ();
                Ok ()
              with Ostd.Panic.Service_failure { errno; _ } -> Error errno
            in
            release ();
            r))

(* Explicit checkpoint (sync_fs): takes the committing gate so it never
   interleaves with a commit or another checkpoint. *)
let checkpoint () =
  if !enabled then begin
    (match Ostd.Task.current_opt () with
    | Some _ -> Ostd.Wait_queue.sleep_until !gate_wq (fun () -> not !committing)
    | None -> ());
    committing := true;
    Fun.protect
      ~finally:(fun () ->
        committing := false;
        ignore (Ostd.Wait_queue.wake_all !gate_wq))
      (fun () ->
        (* Drain mutators: a checkpoint mid-operation could write a
           half-updated block home from the cache. *)
        (match Ostd.Task.current_opt () with
        | Some _ -> Ostd.Wait_queue.sleep_until !gate_wq (fun () -> !open_handles = 0)
        | None -> assert (!open_handles = 0));
        do_checkpoint ())
  end

(* A mutating fs operation holds a handle for its duration; commit
   drains and excludes them. Only meaningful in task context — at boot
   there is exactly one flow of control. *)
let with_handle f =
  if not !enabled then f ()
  else begin
    (match Ostd.Task.current_opt () with
    | Some _ -> Ostd.Wait_queue.sleep_until !gate_wq (fun () -> not !committing)
    | None -> ());
    incr open_handles;
    Fun.protect
      ~finally:(fun () ->
        decr open_handles;
        ignore (Ostd.Wait_queue.wake_all !gate_wq))
      f
  end

(* --- Mount-time replay --- *)

(* Validate a descriptor's home block list: inside the device, outside
   the journal area. *)
let homes_valid homes =
  let total = Block.capacity_sectors () / Block.sectors_per_block in
  List.for_all
    (fun b -> b >= 0 && b < total && not (b >= !jstart && b < !jstart + !jblocks))
    homes

let replay () =
  if !enabled then
    Sim.Prof.scope "jbd" (fun () ->
        recovery_rev := [];
        let jsb = read_whole (slot_block 0) in
        if u32 jsb 0 <> jsb_magic then begin
          log_line "jbd: no journal superblock; skipping replay";
          Ostd.Panic.panic "jbd: journal superblock missing (not formatted?)"
        end;
        let expected = ref (u32 jsb 4) in
        let slot = ref 1 in
        let live = ref true in
        let replayed = ref 0 in
        while !live && !slot + 2 < !jblocks do
          let desc = read_whole (slot_block !slot) in
          if u32 desc 0 <> desc_magic || u32 desc 4 <> !expected then
            (* End of the live region: stale or never-written slots. *)
            live := false
          else begin
            let n = u32 desc 8 in
            let shape_ok = n > 0 && n <= max_txn && !slot + n + 1 < !jblocks in
            let homes =
              if shape_ok then List.init n (fun i -> u32 desc (12 + (4 * i))) else []
            in
            if not (shape_ok && homes_valid homes) then begin
              Sim.Stats.incr "jbd.torn_discarded";
              log_line "jbd: seq=%d torn descriptor at slot %d; discarded" !expected !slot;
              live := false
            end
            else begin
              let contents = List.init n (fun i -> read_whole (slot_block (!slot + 1 + i))) in
              let cb = read_whole (slot_block (!slot + n + 1)) in
              if
                u32 cb 0 <> commit_magic
                || u32 cb 4 <> !expected
                || u32 cb 8 <> checksum ~txn_seq:!expected contents
              then begin
                Sim.Stats.incr "jbd.torn_discarded";
                log_line "jbd: seq=%d torn at slot %d; discarded" !expected !slot;
                live := false
              end
              else begin
                List.iter2 (fun home c -> write_whole home c) homes contents;
                replayed := !replayed + n;
                Sim.Stats.add "jbd.replayed" n;
                log_line "jbd: seq=%d replayed %d blocks from slot %d" !expected n !slot;
                expected := !expected + 1;
                slot := !slot + n + 2
              end
            end
          end
        done;
        (* Homes durable before the journal forgets the transactions. *)
        (match Block.sync () with
        | Ok () -> ()
        | Error e -> Ostd.Panic.failf ~errno:e "jbd: replay writeback failed");
        seq := !expected;
        next_slot := 1;
        Hashtbl.reset running;
        Hashtbl.reset committed;
        (match write_jsb () with
        | Ok () -> ()
        | Error e -> Ostd.Panic.failf ~errno:e "jbd: replay tail update failed");
        log_line "jbd: replay done, %d blocks restored, next seq=%d" !replayed !seq;
        Sim.Trace.emit Sim.Trace.Blk "jbd_replay" (fun () ->
            Printf.sprintf "restored=%d seq=%d" !replayed !seq))
