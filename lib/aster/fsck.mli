(** fsck-style invariant checker for the mounted ext2 image.

    Read-only walk of superblock, bitmaps, inode table, and directory
    tree. Returns one line per violated invariant — bitmap/claim
    consistency, exactly-once block ownership, leak detection, free
    counts, strict dirent parsing, reachability, and link counts. An
    empty list means the image is consistent. The crash sweep runs this
    after every remount+replay; with journaling off it is the tool that
    proves a power cut actually corrupted something. *)

val check : unit -> string list
