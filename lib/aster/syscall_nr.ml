let read = 0
let write = 1
let open_ = 2
let close = 3
let stat = 4
let fstat = 5
let lstat = 6
let poll = 7
let lseek = 8
let mmap = 9
let mprotect = 10
let munmap = 11
let brk = 12
let ioctl = 16
let pread64 = 17
let pwrite64 = 18
let readv = 19
let writev = 20
let access = 21
let pipe = 22
let sched_yield = 24
let dup = 32
let dup2 = 33
let nanosleep = 35
let getpid = 39
let sendfile = 40
let socket = 41
let connect = 42
let accept = 43
let sendto = 44
let recvfrom = 45
let shutdown = 48
let bind = 49
let listen = 50
let getsockname = 51
let socketpair = 53
let setsockopt = 54
let getsockopt = 55
let fork = 57
let execve = 59
let exit = 60
let wait4 = 61
let kill = 62
let uname = 63
let fcntl = 72
let flock = 73
let fsync = 74
let fdatasync = 75
let truncate = 76
let ftruncate = 77
let getdents = 78
let getcwd = 79
let chdir = 80
let rename = 82
let mkdir = 83
let rmdir = 84
let creat = 85
let link = 86
let unlink = 87
let symlink = 88
let readlink = 89
let chmod = 90
let chown = 92
let umask = 95
let gettimeofday = 96
let getrlimit = 97
let getrusage = 98
let times = 100
let getuid = 102
let getgid = 104
let geteuid = 107
let getegid = 108
let getppid = 110
let setsid = 112
let gettid = 186
let time = 201
let getdents64 = 217
let clock_gettime = 228
let clock_nanosleep = 230
let exit_group = 231
let openat = 257
let mkdirat = 258
let newfstatat = 262
let unlinkat = 263
let renameat = 264
let epoll_wait = 232
let epoll_ctl = 233
let accept4 = 288
let epoll_create1 = 291
let pipe2 = 293
let getrandom = 318
let rt_sigaction = 13
let rt_sigprocmask = 14
let rt_sigpending = 127
let mknod = 133
let statfs = 137
let fchdir = 81
let sync = 162
let dup3 = 292

(* bpf(2)-lite probe surface: probe_load sits on Linux's bpf slot (321)
   since it plays the same role; probe_read takes the adjacent 322. *)
let probe_load = 321
let probe_read = 322

(* kspan request boundaries: applications bracket a logical request
   (one redis command, one HTTP request) so the span covers it instead
   of each syscall. Adjacent to the probe surface. *)
let span_begin = 323
let span_end = 324

let named =
  [
    (read, "read"); (write, "write"); (open_, "open"); (close, "close"); (stat, "stat");
    (fstat, "fstat"); (lstat, "lstat"); (poll, "poll"); (lseek, "lseek"); (mmap, "mmap");
    (mprotect, "mprotect"); (munmap, "munmap"); (brk, "brk"); (ioctl, "ioctl");
    (pread64, "pread64"); (pwrite64, "pwrite64"); (readv, "readv"); (writev, "writev");
    (access, "access"); (pipe, "pipe"); (sched_yield, "sched_yield"); (dup, "dup");
    (dup2, "dup2"); (nanosleep, "nanosleep"); (getpid, "getpid"); (sendfile, "sendfile");
    (socket, "socket"); (connect, "connect"); (accept, "accept"); (sendto, "sendto");
    (recvfrom, "recvfrom"); (shutdown, "shutdown"); (bind, "bind"); (listen, "listen");
    (getsockname, "getsockname"); (socketpair, "socketpair"); (setsockopt, "setsockopt");
    (getsockopt, "getsockopt"); (fork, "fork"); (execve, "execve"); (exit, "exit");
    (wait4, "wait4"); (kill, "kill"); (uname, "uname"); (fcntl, "fcntl"); (flock, "flock");
    (fsync, "fsync"); (fdatasync, "fdatasync"); (truncate, "truncate");
    (ftruncate, "ftruncate"); (getdents, "getdents"); (getcwd, "getcwd"); (chdir, "chdir");
    (rename, "rename"); (mkdir, "mkdir"); (rmdir, "rmdir"); (creat, "creat"); (link, "link");
    (unlink, "unlink"); (symlink, "symlink"); (readlink, "readlink"); (chmod, "chmod");
    (chown, "chown"); (umask, "umask"); (gettimeofday, "gettimeofday");
    (getrlimit, "getrlimit"); (getrusage, "getrusage"); (times, "times"); (getuid, "getuid");
    (getgid, "getgid");
    (geteuid, "geteuid"); (getegid, "getegid"); (getppid, "getppid"); (setsid, "setsid");
    (gettid, "gettid"); (time, "time"); (getdents64, "getdents64");
    (clock_gettime, "clock_gettime"); (clock_nanosleep, "clock_nanosleep");
    (exit_group, "exit_group"); (openat, "openat"); (mkdirat, "mkdirat");
    (newfstatat, "newfstatat"); (unlinkat, "unlinkat"); (renameat, "renameat");
    (epoll_wait, "epoll_wait"); (epoll_ctl, "epoll_ctl"); (accept4, "accept4");
    (epoll_create1, "epoll_create1");
    (pipe2, "pipe2"); (getrandom, "getrandom"); (rt_sigaction, "rt_sigaction");
    (rt_sigprocmask, "rt_sigprocmask"); (rt_sigpending, "rt_sigpending"); (mknod, "mknod");
    (statfs, "statfs"); (fchdir, "fchdir"); (sync, "sync"); (dup3, "dup3");
    (probe_load, "probe_load"); (probe_read, "probe_read");
    (span_begin, "span_begin"); (span_end, "span_end");
  ]

(* The rest of the advertised ABI surface: numbers Asterinas registers
   but this reproduction serves with an explicit ENOSYS handler. The
   ranges cover scheduling, signals, timers, xattrs, epoll, inotify,
   namespaces — the long tail of a 210+-call ABI. *)
let stub_range =
  List.filter
    (fun n -> not (List.mem_assoc n named))
    (List.init 335 (fun i -> i))

let stubbed = List.filteri (fun i _ -> i < 335 - List.length named) stub_range

let registered = List.sort compare (List.map fst named @ stubbed)

let registered_count = List.length registered

let name n =
  match List.assoc_opt n named with Some s -> s | None -> Printf.sprintf "sys_%d" n

(* kprof scope label per syscall nr, memoized so the dispatch hot path
   never allocates. *)
let scope_names : (int, string) Hashtbl.t = Hashtbl.create 128

let scope_name n =
  match Hashtbl.find_opt scope_names n with
  | Some s -> s
  | None ->
    let s = "syscall." ^ name n in
    Hashtbl.add scope_names n s;
    s
