let mss = Packet.mss

(* Every pinned frame released anywhere must count net.zc_unpin so the
   pin/unpin conservation gate balances against Page_cache's zc_pin. *)
let drop_pins pins =
  List.iter
    (fun f ->
      Sim.Stats.incr "net.zc_unpin";
      Ostd.Frame.drop f)
    pins

(* Growable byte FIFO used for send queues and receive buffers. A chunk
   may carry pinned page-cache frames (zero-copy sendfile); the pins
   travel with the chunk's final byte, so the packet that consumes a
   chunk inherits them and they stay live until that packet's TX
   completes. *)
module Fifo = struct
  type chunk = { data : Bytes.t; off : int ref; mutable pins : Ostd.Frame.t list }

  type t = { q : chunk Queue.t; mutable len : int }

  let create () = { q = Queue.create (); len = 0 }

  let length t = t.len

  let push ?(pins = []) t b pos n =
    if n > 0 then begin
      Queue.push { data = Bytes.sub b pos n; off = ref 0; pins } t.q;
      t.len <- t.len + n
    end
    else drop_pins pins

  (* Receive-side drain into a caller buffer. Receive buffers never hold
     pins; if one ever did, release the frames rather than leak them. *)
  let pop_into t buf pos n =
    let moved = ref 0 in
    while !moved < n && not (Queue.is_empty t.q) do
      let c = Queue.peek t.q in
      let avail = Bytes.length c.data - !(c.off) in
      let take = min avail (n - !moved) in
      Bytes.blit c.data !(c.off) buf (pos + !moved) take;
      c.off := !(c.off) + take;
      moved := !moved + take;
      if !(c.off) = Bytes.length c.data then begin
        drop_pins c.pins;
        ignore (Queue.pop t.q)
      end
    done;
    t.len <- t.len - !moved;
    !moved

  (* Transmit-side pop: returns the bytes plus the pins of every chunk
     fully consumed by this segment (ownership transfers to the caller's
     packet). *)
  let pop t n =
    let out = Bytes.create (min n t.len) in
    let want = Bytes.length out in
    let moved = ref 0 in
    let pins = ref [] in
    while !moved < want && not (Queue.is_empty t.q) do
      let c = Queue.peek t.q in
      let avail = Bytes.length c.data - !(c.off) in
      let take = min avail (want - !moved) in
      Bytes.blit c.data !(c.off) out !moved take;
      c.off := !(c.off) + take;
      moved := !moved + take;
      if !(c.off) = Bytes.length c.data then begin
        pins := !pins @ c.pins;
        ignore (Queue.pop t.q)
      end
    done;
    t.len <- t.len - !moved;
    ((if !moved = want then out else Bytes.sub out 0 !moved), !pins)

  (* Abandon queued data (connection reset): drop any pinned frames so
     zero-copy conservation holds even on error paths. *)
  let drain_pins t =
    Queue.iter
      (fun c ->
        drop_pins c.pins;
        c.pins <- [])
      t.q
end

type conn_state = Syn_sent | Syn_rcvd | Established | Closed

type engine = {
  stack : Netstack.t;
  cc : bool;
  conns : (int * int * int, conn) Hashtbl.t; (* (local port, remote ip, remote port) *)
  listeners : (int, listener) Hashtbl.t;
  mutable next_ephemeral : int;
}

and listener = {
  l_eng : engine;
  l_port : int;
  backlog : conn Queue.t;
  l_backlog_max : int; (* listen(2) backlog cap; SYNs beyond it drop *)
  accept_wq : Ostd.Wait_queue.t;
  l_pollable : Pollable.t; (* POLLIN while the accept queue is non-empty *)
}

and conn = {
  eng : engine;
  lip : int; (* local address: loopback connections stay on 127.0.0.1 *)
  seg_limit : int; (* loopback takes GSO-sized segments, the wire takes MSS *)
  lport : int;
  rip : int;
  rport : int;
  mutable state : conn_state;
  (* send side *)
  txq : Fifo.t;
  sndbuf_cap : int;
  inflight : (int * Bytes.t) Queue.t; (* (seq, payload) *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable peer_win : int;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable rto_event : Sim.Events.handle option;
  snd_wq : Ostd.Wait_queue.t;
  (* receive side *)
  rcvbuf : Fifo.t;
  rcvbuf_cap : int;
  mutable rcv_nxt : int;
  mutable peer_fin : bool;
  mutable local_closed : bool;
  mutable reset : bool;
  mutable timed_out : bool; (* handshake retries exhausted *)
  rcv_wq : Ostd.Wait_queue.t;
  conn_wq : Ostd.Wait_queue.t;
  mutable delack_event : Sim.Events.handle option;
  mutable unacked : int; (* bytes received since the last ACK we sent *)
  mutable rx_segments : int; (* data segments received on this connection *)
  mutable nodelay : bool; (* TCP_NODELAY: disable the Nagle hold *)
  mutable tx_soft_errors : int; (* driver gave up on a frame; RTO repairs it *)
  pollable : Pollable.t; (* readiness seam: edges published below *)
}

let rto_cycles = Sim.Clock.us 40_000. (* 40 ms *)

(* A lossy or fault-injected link can eat SYN / SYN-ACK; data has the
   RTO to cover it, the handshake needs its own bounded retransmit or a
   connect sleeps forever. *)
let handshake_max_tries = 8

let initial_cwnd = 10 * mss

let key c = (c.lport, c.rip, c.rport)

(* Per-segment transmit processing; sub-MSS writes are charged at the
   send(2) call instead (see [send]). With GSO a "segment" here is a
   super-segment of up to gso_max_size bytes — one charge for what the
   software baseline pays per MSS. Checksum offload carves the software
   checksum share out of the per-segment cost: the device computes it. *)
let charge_tx eng =
  let c = Sim.Cost.c () in
  let csum =
    if (Sim.Profile.get ()).Sim.Profile.csum_tx_offload then c.Sim.Profile.tcp_csum_cycles
    else 0
  in
  Netstack.charge eng.stack (max 0 (c.Sim.Profile.tcp_tx_segment - csum))

(* Receive processing: tiny segments take the header-prediction fast
   path; full segments pay the per-segment base plus a per-byte part.
   With checksum offload the device verified the frame, so the per-byte
   pass runs at twice the rate (no software checksum touch). GRO hands
   this function one merged super-segment per burst — the invocation
   count itself ([tcp.rx_calls], guest only) is what the GRO ablation
   gates on. *)
let charge_rx eng len =
  let c = Sim.Cost.c () in
  if not (Netstack.is_host eng.stack) then Sim.Stats.incr "tcp.rx_calls";
  if len < mss then
    Netstack.charge eng.stack (c.Sim.Profile.tcp_rx_small + (len / c.Sim.Profile.tcp_rx_small_bpc))
  else begin
    let bpc =
      if (Sim.Profile.get ()).Sim.Profile.csum_rx_offload then 2 * c.Sim.Profile.tcp_rx_bpc
      else c.Sim.Profile.tcp_rx_bpc
    in
    Netstack.charge eng.stack (c.Sim.Profile.tcp_rx_segment + (len / bpc))
  end

let free_window conn = conn.rcvbuf_cap - Fifo.length conn.rcvbuf

let make_conn eng ~lip ~lport ~rip ~rport ~state =
  (* Connection object setup (socket buffers, timers, hash insertion,
     firewall hooks) — where a full Linux stack pays far more than a
     lean smoltcp-style one. *)
  Netstack.charge eng.stack (Sim.Cost.c ()).Sim.Profile.tcp_conn_setup;
  let p = Sim.Profile.get () in
  let loopback = rip = Netstack.loopback_ip || rip = Netstack.ip eng.stack in
  (* Loopback behaves like an infinite-MTU device; on the wire, GSO/TSO
     hands super-segments (up to the profile's gso_max_size) to the NIC,
     which splits them into MSS wire frames at ring time, while a stack
     without the offload segments to MSS in software. Host-side client
     stacks model the host's Linux and always use GSO (the host bridge
     performs the wire split, see {!Kernel.attach_host}). *)
  let wire_seg =
    if p.Sim.Profile.tcp_gso || Netstack.is_host eng.stack then p.Sim.Profile.gso_max_size
    else mss
  in
  let conn =
  {
    eng;
    lip;
    seg_limit = (if loopback then p.Sim.Profile.gso_max_size else wire_seg);
    lport;
    rip;
    rport;
    state;
    txq = Fifo.create ();
    sndbuf_cap = p.Sim.Profile.tcp_sndbuf;
    inflight = Queue.create ();
    snd_una = 0;
    snd_nxt = 0;
    peer_win = 64 * 1024;
    cwnd = initial_cwnd;
    ssthresh = max_int;
    rto_event = None;
    snd_wq = Ostd.Wait_queue.create ();
    rcvbuf = Fifo.create ();
    rcvbuf_cap = 256 * 1024;
    rcv_nxt = 0;
    peer_fin = false;
    local_closed = false;
    reset = false;
    timed_out = false;
    rcv_wq = Ostd.Wait_queue.create ();
    conn_wq = Ostd.Wait_queue.create ();
    delack_event = None;
    unacked = 0;
    rx_segments = 0;
    nodelay = false;
    tx_soft_errors = 0;
    pollable = Pollable.create (fun () -> 0);
  }
  in
  (* Level semantics (see DESIGN §4k): readable on buffered data, EOF
     or reset; writable only while established with send-buffer space;
     HUP/RDHUP on peer close; ERR on reset. *)
  Pollable.set_level conn.pollable (fun () ->
      (if Fifo.length conn.rcvbuf > 0 || conn.peer_fin || conn.reset then Pollable.pollin else 0)
      lor (if conn.peer_fin then Pollable.pollrdhup lor Pollable.pollhup else 0)
      lor (if conn.reset then Pollable.pollerr lor Pollable.pollhup else 0)
      lor
      if
        conn.state = Established && (not conn.local_closed) && (not conn.reset)
        && Fifo.length conn.txq < conn.sndbuf_cap
      then Pollable.pollout
      else 0);
  conn

let emit conn ?(flags = Packet.ack_flag) ?(seq = 0) ?(pins = []) payload =
  let p =
    Packet.make ~src_ip:conn.lip ~dst_ip:conn.rip ~proto:Packet.Tcp
      ~src_port:conn.lport ~dst_port:conn.rport ~flags ~seq ~ack:conn.rcv_nxt
      ~win:(free_window conn) payload
  in
  p.Packet.pins <- pins;
  Netstack.send conn.eng.stack p

let send_pure_ack conn =
  (match conn.delack_event with
  | Some ev ->
    Sim.Events.cancel ev;
    conn.delack_event <- None
  | None -> ());
  conn.unacked <- 0;
  emit conn Bytes.empty

let delack_cycles = Sim.Clock.us 500.

(* Delayed ACK: full segments in a stream are acknowledged every other
   segment (or after a short timer); sub-MSS arrivals ACK immediately so
   Nagle on the other side never stalls a ping-pong. *)
let ack_after_data conn len =
  conn.unacked <- conn.unacked + len;
  conn.rx_segments <- conn.rx_segments + 1;
  if len < mss || conn.unacked >= 2 * mss then send_pure_ack conn
  else if conn.delack_event = None then
    conn.delack_event <-
      Some
        (Sim.Events.schedule_after delack_cycles (fun () ->
             conn.delack_event <- None;
             if conn.unacked > 0 then send_pure_ack conn))

(* --- Transmit machinery --- *)

let effective_window conn =
  let w = if conn.eng.cc then min conn.peer_win conn.cwnd else conn.peer_win in
  w - (conn.snd_nxt - conn.snd_una)

let rec arm_rto conn =
  match conn.rto_event with
  | Some _ -> ()
  | None ->
    if not (Queue.is_empty conn.inflight) then
      conn.rto_event <- Some (Sim.Events.schedule_after rto_cycles (fun () -> on_rto conn))

and on_rto conn =
  conn.rto_event <- None;
  if not (Queue.is_empty conn.inflight) then begin
    Sim.Stats.incr "degrade.retried.tcp_rto";
    (* Reno reaction. *)
    if conn.eng.cc then begin
      conn.ssthresh <- max ((conn.snd_nxt - conn.snd_una) / 2) (2 * mss);
      conn.cwnd <- 2 * mss
    end;
    let seq, payload = Queue.peek conn.inflight in
    charge_tx conn.eng;
    emit conn ~seq payload;
    arm_rto conn
  end

let try_transmit conn =
  if conn.state = Established || conn.state = Syn_rcvd then begin
    let was_full = Fifo.length conn.txq >= conn.sndbuf_cap in
    let continue = ref true in
    while !continue do
      let w = effective_window conn in
      let avail = Fifo.length conn.txq in
      if w <= 0 || avail = 0 then continue := false
      else if
        avail < min mss conn.seg_limit
        && (not (Queue.is_empty conn.inflight))
        && (not conn.nodelay)
        && not conn.local_closed
      then
        (* Nagle / autocork: hold a sub-MSS tail while data is in flight,
           so small-write streams coalesce into full segments. *)
        continue := false
      else begin
        let seg = min conn.seg_limit (min w avail) in
        let payload, pins = Fifo.pop conn.txq seg in
        (* Sub-MSS segments were already charged at the send(2) call. *)
        if seg >= mss then charge_tx conn.eng;
        (* PSH on the segment that empties the send queue: the receiver's
           GRO engine flushes its merge on it, so the tail of a burst is
           delivered immediately instead of waiting for the NAPI idle
           poll. Retransmits (from [inflight]) go out without it, which
           is harmless — a flag discontinuity also flushes. *)
        let flags =
          if Fifo.length conn.txq = 0 then Packet.ack_flag lor Packet.psh
          else Packet.ack_flag
        in
        emit conn ~flags ~seq:conn.snd_nxt ~pins payload;
        Queue.push (conn.snd_nxt, payload) conn.inflight;
        conn.snd_nxt <- conn.snd_nxt + seg
      end
    done;
    arm_rto conn;
    (* Space may have opened up for blocked senders. *)
    if Fifo.length conn.txq < conn.sndbuf_cap then begin
      ignore (Ostd.Wait_queue.wake_all conn.snd_wq);
      (* A full→space transition is the only genuine POLLOUT edge —
         publishing on every ACK would hand ET consumers events with
         no state change behind them. *)
      if was_full then Pollable.publish conn.pollable Pollable.pollout
    end
  end

let maybe_send_fin conn =
  if
    conn.local_closed
    && Fifo.length conn.txq = 0
    && Queue.is_empty conn.inflight
    && conn.state = Established
  then begin
    emit conn ~flags:(Packet.fin lor Packet.ack_flag) Bytes.empty;
    conn.state <- Closed
  end

(* --- Receive path --- *)

let on_ack conn (p : Packet.t) =
  if p.Packet.ack > conn.snd_una then begin
    let acked = p.Packet.ack - conn.snd_una in
    conn.snd_una <- p.Packet.ack;
    (* Drop fully-acked segments. *)
    let continue = ref true in
    while !continue && not (Queue.is_empty conn.inflight) do
      let seq, payload = Queue.peek conn.inflight in
      if seq + Bytes.length payload <= conn.snd_una then ignore (Queue.pop conn.inflight)
      else continue := false
    done;
    (* Restart the retransmission timer on forward progress. *)
    (match conn.rto_event with
    | Some ev ->
      Sim.Events.cancel ev;
      conn.rto_event <- None
    | None -> ());
    (* Byte-counting congestion control (RFC 3465): credit the bytes the
       ACK covers, not the ACK's arrival. A GRO receiver acknowledges
       once per coalesced super-segment — up to 45 MSS per ACK — and a
       per-ACK increment would ramp cwnd ~20x slower behind such a
       receiver, stalling the sender on its own congestion window. For
       sub-MSS ACKs (ping-pong, delayed-ACK-off) the two rules agree. *)
    if conn.eng.cc then
      if conn.cwnd < conn.ssthresh then conn.cwnd <- conn.cwnd + acked
      else conn.cwnd <- conn.cwnd + max 1 (acked * mss / conn.cwnd)
  end;
  conn.peer_win <- p.Packet.win;
  try_transmit conn;
  maybe_send_fin conn;
  ignore (Ostd.Wait_queue.wake_all conn.snd_wq)

let on_data conn (p : Packet.t) =
  let len = Bytes.length p.Packet.payload in
  if len > 0 then begin
    if p.Packet.seq = conn.rcv_nxt && free_window conn >= len then begin
      charge_rx conn.eng len;
      Fifo.push conn.rcvbuf p.Packet.payload 0 len;
      conn.rcv_nxt <- conn.rcv_nxt + len;
      ack_after_data conn len;
      ignore (Ostd.Wait_queue.wake_all conn.rcv_wq);
      Pollable.publish conn.pollable Pollable.pollin
    end
    else begin
      (* Duplicate or out-of-window: re-ack so the sender resynchronises. *)
      if p.Packet.seq = conn.rcv_nxt then Sim.Stats.incr "tcp.drop_nospace"
      else if p.Packet.seq < conn.rcv_nxt then Sim.Stats.incr "tcp.drop_dup"
      else Sim.Stats.incr "tcp.drop_ooo";
      send_pure_ack conn
    end
  end

let engine_rx eng (p : Packet.t) =
  let k = (p.Packet.dst_port, p.Packet.src_ip, p.Packet.src_port) in
  match Hashtbl.find_opt eng.conns k with
  | Some conn ->
    if p.Packet.flags land Packet.rst <> 0 then begin
      conn.reset <- true;
      conn.state <- Closed;
      (* Abandoning the send queue: release any zero-copy pins so the
         pin/unpin conservation invariant survives connection resets. *)
      Fifo.drain_pins conn.txq;
      ignore (Ostd.Wait_queue.wake_all conn.rcv_wq);
      ignore (Ostd.Wait_queue.wake_all conn.snd_wq);
      ignore (Ostd.Wait_queue.wake_all conn.conn_wq);
      Pollable.publish conn.pollable
        (Pollable.pollin lor Pollable.pollerr lor Pollable.pollhup)
    end
    else begin
      (match conn.state with
      | Syn_sent when p.Packet.flags land Packet.syn <> 0 ->
        conn.state <- Established;
        send_pure_ack conn;
        ignore (Ostd.Wait_queue.wake_all conn.conn_wq);
        Pollable.publish conn.pollable Pollable.pollout
      | Syn_rcvd when p.Packet.flags land Packet.ack_flag <> 0 -> (
        conn.state <- Established;
        match Hashtbl.find_opt eng.listeners conn.lport with
        | Some l ->
          Queue.push conn l.backlog;
          ignore (Ostd.Wait_queue.wake_one l.accept_wq);
          Pollable.publish l.l_pollable Pollable.pollin
        | None -> ())
      | _ -> ());
      if conn.state = Established || conn.state = Closed then begin
        if p.Packet.flags land Packet.ack_flag <> 0 then on_ack conn p;
        on_data conn p;
        if p.Packet.flags land Packet.fin <> 0 then begin
          conn.peer_fin <- true;
          conn.rcv_nxt <- conn.rcv_nxt + 1;
          send_pure_ack conn;
          ignore (Ostd.Wait_queue.wake_all conn.rcv_wq);
          Pollable.publish conn.pollable
            (Pollable.pollin lor Pollable.pollhup lor Pollable.pollrdhup)
        end
      end
    end
  | None -> (
    (* No connection: a SYN may create one via a listener. *)
    if p.Packet.flags land Packet.syn <> 0 then begin
      match Hashtbl.find_opt eng.listeners p.Packet.dst_port with
      | Some l when Queue.length l.backlog >= l.l_backlog_max ->
        (* listen(2) backlog full: drop the SYN on the floor. The
           client's handshake retransmit retries after an RTO, by which
           time accept(2) has usually drained the queue — exactly how
           Linux sheds an accept storm without RSTing it. *)
        Sim.Stats.incr "tcp.listen_overflow"
      | Some _ ->
        let conn =
          make_conn eng ~lip:p.Packet.dst_ip ~lport:p.Packet.dst_port ~rip:p.Packet.src_ip
            ~rport:p.Packet.src_port ~state:Syn_rcvd
        in
        Hashtbl.replace eng.conns (key conn) conn;
        emit conn ~flags:(Packet.syn lor Packet.ack_flag) Bytes.empty;
        let rec rexmit n () =
          if conn.state = Syn_rcvd then begin
            if n >= handshake_max_tries then Hashtbl.remove eng.conns (key conn)
            else begin
              Sim.Stats.incr "degrade.retried.tcp_synack";
              emit conn ~flags:(Packet.syn lor Packet.ack_flag) Bytes.empty;
              ignore (Sim.Events.schedule_after rto_cycles (rexmit (n + 1)))
            end
          end
        in
        ignore (Sim.Events.schedule_after rto_cycles (rexmit 1))
      | None ->
        (* Connection refused. *)
        Netstack.send eng.stack
          (Packet.make ~src_ip:p.Packet.dst_ip ~dst_ip:p.Packet.src_ip ~proto:Packet.Tcp
             ~src_port:p.Packet.dst_port ~dst_port:p.Packet.src_port ~flags:Packet.rst
             Bytes.empty)
    end
    else if p.Packet.flags land Packet.rst = 0 then
      Netstack.send eng.stack
        (Packet.make ~src_ip:p.Packet.dst_ip ~dst_ip:p.Packet.src_ip ~proto:Packet.Tcp
           ~src_port:p.Packet.dst_port ~dst_port:p.Packet.src_port ~flags:Packet.rst
           Bytes.empty))

(* The driver exhausted its retries (or quarantined the buffer) for an
   outgoing frame. The byte stream is repaired by the normal RTO
   machinery; here we only attribute the soft error to the owning
   connection so it lands on the right socket, not a neighbour sharing
   the burst. *)
let on_tx_error eng (p : Packet.t) =
  match p.Packet.proto with
  | Packet.Tcp -> (
    let k = (p.Packet.src_port, p.Packet.dst_ip, p.Packet.dst_port) in
    match Hashtbl.find_opt eng.conns k with
    | Some conn ->
      conn.tx_soft_errors <- conn.tx_soft_errors + 1;
      Sim.Stats.incr "tcp.tx_soft_err"
    | None -> Sim.Stats.incr "net.tx_err_unclaimed")
  | Packet.Udp -> Sim.Stats.incr "net.tx_err_unclaimed"

let create_engine stack ~cc =
  let eng =
    { stack; cc; conns = Hashtbl.create 64; listeners = Hashtbl.create 8; next_ephemeral = 33000 }
  in
  Netstack.set_tcp_rx stack (engine_rx eng);
  Netstack.set_tx_err stack (on_tx_error eng);
  eng

(* --- Public API --- *)

let listen ?(backlog = 128) eng ~port =
  if Hashtbl.mem eng.listeners port then Error Errno.eaddrinuse
  else begin
    let l =
      {
        l_eng = eng;
        l_port = port;
        backlog = Queue.create ();
        l_backlog_max = max 1 backlog;
        accept_wq = Ostd.Wait_queue.create ();
        l_pollable = Pollable.create (fun () -> 0);
      }
    in
    Pollable.set_level l.l_pollable (fun () ->
        if Queue.is_empty l.backlog then 0 else Pollable.pollin);
    Hashtbl.replace eng.listeners port l;
    Ok l
  end

let pending l = Queue.length l.backlog

let accept l =
  Ostd.Wait_queue.sleep_until l.accept_wq (fun () -> not (Queue.is_empty l.backlog));
  Queue.pop l.backlog

(* Non-blocking accept: the O_NONBLOCK / accept4 path. *)
let accept_opt l = if Queue.is_empty l.backlog then None else Some (Queue.pop l.backlog)

let connect eng ~dst_ip ~dst_port =
  Netstack.charge eng.stack (Sim.Cost.c ()).Sim.Profile.tcp_small_write;
  let lport = eng.next_ephemeral in
  eng.next_ephemeral <- eng.next_ephemeral + 1;
  let lip =
    if dst_ip = Netstack.loopback_ip || dst_ip = Netstack.ip eng.stack then dst_ip
    else Netstack.ip eng.stack
  in
  let conn = make_conn eng ~lip ~lport ~rip:dst_ip ~rport:dst_port ~state:Syn_sent in
  Hashtbl.replace eng.conns (key conn) conn;
  emit conn ~flags:Packet.syn Bytes.empty;
  let rec rexmit n () =
    if conn.state = Syn_sent && not conn.reset then begin
      if n >= handshake_max_tries then begin
        conn.timed_out <- true;
        ignore (Ostd.Wait_queue.wake_all conn.conn_wq)
      end
      else begin
        Sim.Stats.incr "degrade.retried.tcp_syn";
        emit conn ~flags:Packet.syn Bytes.empty;
        ignore (Sim.Events.schedule_after rto_cycles (rexmit (n + 1)))
      end
    end
  in
  ignore (Sim.Events.schedule_after rto_cycles (rexmit 1));
  Ostd.Wait_queue.sleep_until conn.conn_wq (fun () ->
      conn.state <> Syn_sent || conn.reset || conn.timed_out);
  if conn.reset || conn.timed_out then begin
    Hashtbl.remove eng.conns (key conn);
    Error (if conn.reset then Errno.econnrefused else Errno.etimedout)
  end
  else Ok conn

let send ?(pins = []) ?(nonblock = false) conn ~buf ~pos ~len =
  if conn.reset || conn.local_closed then begin
    drop_pins pins;
    Error Errno.epipe
  end
  else if nonblock && Fifo.length conn.txq >= conn.sndbuf_cap then begin
    (* O_NONBLOCK with a full send buffer: EAGAIN before charging the
       small-write cost — the caller parks on POLLOUT instead. *)
    drop_pins pins;
    Error Errno.eagain
  end
  else begin
    (* The send-path cost of a small write (socket lock, segmentation
       bookkeeping); full segments pay per-segment costs at transmit. *)
    if len < mss then
      Netstack.charge conn.eng.stack (Sim.Cost.c ()).Sim.Profile.tcp_small_write;
    let written = ref 0 in
    let err = ref None in
    (* Zero-copy: the caller's pins ride on the chunk holding the final
       byte, so the packet consuming that byte inherits them and keeps
       the page-cache frames live until its TX resolves. If the write is
       cut short (reset mid-send), the pins never attach and we release
       them here — [send] owns them unconditionally. *)
    let attached = ref false in
    while
      !written < len && !err = None
      && not (nonblock && Fifo.length conn.txq >= conn.sndbuf_cap)
    do
      Ostd.Wait_queue.sleep_until conn.snd_wq (fun () ->
          Fifo.length conn.txq < conn.sndbuf_cap || conn.reset);
      if conn.reset then err := Some Errno.epipe
      else begin
        let space = conn.sndbuf_cap - Fifo.length conn.txq in
        let n = min space (len - !written) in
        let last = !written + n = len in
        Fifo.push ?pins:(if last then Some pins else None) conn.txq buf (pos + !written) n;
        if last then attached := true;
        written := !written + n;
        try_transmit conn
      end
    done;
    if not !attached then drop_pins pins;
    match !err with Some e when !written = 0 -> Error e | _ -> Ok !written
  end

let recv ?(nonblock = false) conn ~buf ~pos ~len =
  if conn.reset then Error Errno.econnreset
  else if nonblock && Fifo.length conn.rcvbuf = 0 && not conn.peer_fin then Error Errno.eagain
  else begin
    (* A receiver that must sleep pays the full wakeup path; streaming
       receivers find data ready and skip it. *)
    if Fifo.length conn.rcvbuf = 0 && not (conn.peer_fin || conn.reset) then
      Netstack.charge conn.eng.stack (Sim.Cost.c ()).Sim.Profile.net_wake;
    Ostd.Wait_queue.sleep_until conn.rcv_wq (fun () ->
        Fifo.length conn.rcvbuf > 0 || conn.peer_fin || conn.reset);
    if conn.reset then Error Errno.econnreset
    else if Fifo.length conn.rcvbuf = 0 then Ok 0 (* peer closed *)
    else begin
      let was_starved = free_window conn < mss in
      let n = Fifo.pop_into conn.rcvbuf buf pos len in
      if was_starved && free_window conn >= mss then send_pure_ack conn;
      Ok n
    end
  end

let recv_available conn = Fifo.length conn.rcvbuf

let close conn =
  if not conn.local_closed then begin
    conn.local_closed <- true;
    maybe_send_fin conn;
    (* Forget the connection once both directions are done; a fuller
       implementation would hold TIME_WAIT. *)
    if conn.state = Closed && conn.peer_fin then Hashtbl.remove conn.eng.conns (key conn)
  end

(* SO_LINGER-0-style abortive close: fire an RST at the peer and tear
   the local state down immediately. The chaos suite uses this to
   inject resets mid-churn; the peer's readiness layer must surface
   them as EPOLLERR|EPOLLHUP. *)
let abort conn =
  if not conn.reset then begin
    emit conn ~flags:Packet.rst Bytes.empty;
    conn.reset <- true;
    conn.state <- Closed;
    Fifo.drain_pins conn.txq;
    Hashtbl.remove conn.eng.conns (key conn);
    ignore (Ostd.Wait_queue.wake_all conn.rcv_wq);
    ignore (Ostd.Wait_queue.wake_all conn.snd_wq);
    ignore (Ostd.Wait_queue.wake_all conn.conn_wq);
    Pollable.publish conn.pollable (Pollable.pollin lor Pollable.pollerr lor Pollable.pollhup)
  end

let pollable conn = conn.pollable

let listener_pollable l = l.l_pollable

let set_nodelay conn = conn.nodelay <- true

let peer_of conn = (conn.rip, conn.rport)

let local_port conn = conn.lport

let cwnd_bytes conn = if conn.eng.cc then conn.cwnd else max_int

let tx_soft_errors conn = conn.tx_soft_errors
