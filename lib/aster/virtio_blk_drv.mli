(** Virtio block driver — de-privileged code using only OSTD's safe APIs
    (IoMem, IrqLine, DMA, untyped frames), like the paper's drivers.

    DMA buffers follow the installed profile: with pooling on, request
    descriptors come from a persistent pool (mapped once); the paper
    notes blk-side pooling is *incomplete*, so data pages are still
    mapped/unmapped per request unless [blk_pooling_complete] is set —
    this is what makes SQLite more IOMMU-sensitive than Nginx/Redis
    (§6.1.4).

    Besides single-bio [submit], the driver implements the block layer's
    [submit_many]: a sorted run of bios becomes one descriptor chain
    (linked through the descriptor's [next] field) rung with a single
    doorbell; the device answers the whole chain with one completion
    interrupt. Doorbells actually rung are counted under [blk.doorbell],
    suppressed notifies under [blk.notify_suppressed], completion
    interrupts under [blk.irq], and pool slots quarantined by bio
    give-up under [blk.pool_leaked]. *)

val init : unit -> unit
(** Probe the bus, claim the device window/vector, build pools, and
    register with {!Block}. Panics if no virtio-blk device exists. *)

val in_flight : unit -> int
