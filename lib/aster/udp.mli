(** UDP: per-port datagram sockets with blocking receive. *)

type engine

type socket

val create_engine : Netstack.t -> engine

val socket : engine -> socket

val bind : socket -> port:int -> (unit, int) result

val bound_port : socket -> int option

val sendto : socket -> dst_ip:int -> dst_port:int -> buf:bytes -> pos:int -> len:int ->
  (int, int) result
(** Binds to an ephemeral port on first use. *)

val recvfrom :
  ?nonblock:bool -> socket -> buf:bytes -> pos:int -> len:int -> (int * int * int, int) result
(** Blocks; returns (bytes, src_ip, src_port). Datagrams truncate.
    [~nonblock:true] returns EAGAIN instead of blocking. *)

val pollable : socket -> Pollable.t
(** POLLIN on queued datagrams; POLLOUT always while open. *)

val rx_queued : socket -> int

val close : socket -> unit
