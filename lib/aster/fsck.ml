(* fsck-style invariant checker for the ext2 image.

   Read-only: walks the on-disk structures through the buffer cache and
   reports every violated invariant as a human-readable line. An empty
   result means the image is consistent. Run after crash-recovery to
   prove the journal replay reconstructed a sane filesystem — and with
   journaling off, to detect the corruption a power cut leaves behind.

   Invariants checked:
   - superblock magic;
   - reserved blocks (boot metadata + journal) and reserved inodes are
     marked used in their bitmaps;
   - every block an inode claims (data, indirect, double-indirect) is
     in the data area, marked used, and claimed exactly once;
   - no block is marked used without an owner (leak);
   - the superblock free counts match the bitmaps;
   - directory entries parse exactly (no trailing garbage) and point at
     allocated inodes;
   - every allocated inode is reachable from the root, and its link
     count equals the number of directory entries naming it
     (root counts its conventional self-reference: nlink = 2). *)

let block_size = Block.block_size

let inode_size = 128

let inodes_per_block = block_size / inode_size

(* Disk inode field offsets (mirrors Ext2's private layout). *)
let di_mode = 0
let di_size = 4
let di_nlink = 8
let di_direct = 12
let di_indirect = 60
let di_dindirect = 64

let ndirect = 12

let ptrs_per_block = block_size / 4

let u32_at block off =
  let b = Bytes.create 4 in
  Block.read_from_block block ~off ~buf:b ~pos:0 ~len:4;
  Int32.to_int (Bytes.get_int32_le b 0) land 0xffffffff

let bit_get bitmap_block i =
  let byte = Bytes.create 1 in
  Block.read_from_block bitmap_block ~off:(i / 8) ~buf:byte ~pos:0 ~len:1;
  Char.code (Bytes.get byte 0) land (1 lsl (i mod 8)) <> 0

let di ino field =
  let blk = Ext2.inode_table_start + (ino / inodes_per_block) in
  u32_at blk ((ino mod inodes_per_block * inode_size) + field)

let is_dir ino = di ino di_mode land 0xF000 = 0x4000

let device_blocks () = Block.capacity_sectors () / Block.sectors_per_block

let check () =
  let bad = ref [] in
  let violation fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
  if u32_at Ext2.sb_block 0 <> 0xEF53_2025 then begin
    violation "superblock magic is wrong";
    List.rev !bad
  end
  else begin
    let total = min (device_blocks ()) (block_size * 8) in
    (* Reserved area marked used. *)
    for b = 0 to Ext2.first_data_block - 1 do
      if not (bit_get Ext2.block_bitmap b) then
        violation "reserved block %d is marked free" b
    done;
    for i = 0 to Ext2.root_ino do
      if not (bit_get Ext2.inode_bitmap i) then
        violation "reserved inode %d is marked free" i
    done;
    (* Block claims: each data-area block used by at most one owner. *)
    let claim = Hashtbl.create 256 in
    let claim_block ~owner b =
      if b < Ext2.first_data_block || b >= total then
        violation "inode %d claims out-of-range block %d" owner b
      else if not (bit_get Ext2.block_bitmap b) then
        violation "inode %d claims free block %d" owner b
      else
        match Hashtbl.find_opt claim b with
        | Some prev -> violation "block %d claimed by inodes %d and %d" b prev owner
        | None -> Hashtbl.add claim b owner
    in
    let inode_blocks ino =
      let size = di ino di_size in
      let nblocks = (size + block_size - 1) / block_size in
      for fb = 0 to min nblocks Ext2.max_file_blocks - 1 do
        let slot =
          if fb < ndirect then di ino (di_direct + (4 * fb))
          else if fb < ndirect + ptrs_per_block then begin
            let ind = di ino di_indirect in
            if ind = 0 then 0 else u32_at ind (4 * (fb - ndirect))
          end
          else begin
            let idx = fb - ndirect - ptrs_per_block in
            let hi = idx / ptrs_per_block and lo = idx mod ptrs_per_block in
            let dind = di ino di_dindirect in
            if dind = 0 then 0
            else
              let ind = u32_at dind (4 * hi) in
              if ind = 0 then 0 else u32_at ind (4 * lo)
          end
        in
        if slot <> 0 then claim_block ~owner:ino slot
      done;
      let ind = di ino di_indirect in
      if ind <> 0 then claim_block ~owner:ino ind;
      let dind = di ino di_dindirect in
      if dind <> 0 then begin
        claim_block ~owner:ino dind;
        for hi = 0 to ptrs_per_block - 1 do
          let ind = u32_at dind (4 * hi) in
          if ind <> 0 then claim_block ~owner:ino ind
        done
      end
    in
    let allocated = ref [] in
    for ino = Ext2.root_ino to Ext2.ninodes - 1 do
      if bit_get Ext2.inode_bitmap ino then begin
        allocated := ino :: !allocated;
        if di ino di_mode = 0 then violation "allocated inode %d has no mode" ino;
        if di ino di_nlink = 0 then violation "allocated inode %d has zero links" ino;
        inode_blocks ino
      end
    done;
    (* Leaks: used blocks nobody claims. *)
    for b = Ext2.first_data_block to total - 1 do
      if bit_get Ext2.block_bitmap b && not (Hashtbl.mem claim b) then
        violation "block %d is marked used but unclaimed" b
    done;
    (* Free counts. *)
    let free_blocks = ref 0 in
    for b = 0 to total - 1 do
      if not (bit_get Ext2.block_bitmap b) then incr free_blocks
    done;
    let sb_free = u32_at Ext2.sb_block 12 in
    if sb_free <> !free_blocks then
      violation "superblock says %d free blocks, bitmap says %d" sb_free !free_blocks;
    let free_inodes = ref 0 in
    for i = 0 to Ext2.ninodes - 1 do
      if not (bit_get Ext2.inode_bitmap i) then incr free_inodes
    done;
    let sb_ifree = u32_at Ext2.sb_block 16 in
    if sb_ifree <> !free_inodes then
      violation "superblock says %d free inodes, bitmap says %d" sb_ifree !free_inodes;
    (* Directory tree: strict dirent parse, reachability, name counts. *)
    let names : (int, int ref) Hashtbl.t = Hashtbl.create 64 in
    let count_name ino =
      match Hashtbl.find_opt names ino with
      | Some r -> incr r
      | None -> Hashtbl.add names ino (ref 1)
    in
    let read_file ino =
      let size = di ino di_size in
      let buf = Bytes.create size in
      let pos = ref 0 in
      while !pos < size do
        let fb = !pos / block_size and off = !pos mod block_size in
        let chunk = min (size - !pos) (block_size - off) in
        let slot =
          if fb < ndirect then di ino (di_direct + (4 * fb))
          else if fb < ndirect + ptrs_per_block then begin
            let ind = di ino di_indirect in
            if ind = 0 then 0 else u32_at ind (4 * (fb - ndirect))
          end
          else 0
        in
        (if slot = 0 then Bytes.fill buf !pos chunk '\000'
         else Block.read_from_block slot ~off ~buf ~pos:!pos ~len:chunk);
        pos := !pos + chunk
      done;
      buf
    in
    let visited = Hashtbl.create 64 in
    let rec walk_dir ino =
      if not (Hashtbl.mem visited ino) then begin
        Hashtbl.add visited ino ();
        let buf = read_file ino in
        let size = Bytes.length buf in
        let pos = ref 0 in
        let stop = ref false in
        while (not !stop) && !pos < size do
          if !pos + 6 > size then begin
            violation "inode %d: truncated dirent header at %d" ino !pos;
            stop := true
          end
          else begin
            let e_ino = Int32.to_int (Bytes.get_int32_le buf !pos) land 0xffffffff in
            let nlen = Bytes.get_uint16_le buf (!pos + 4) in
            if !pos + 6 + nlen > size then begin
              violation "inode %d: dirent name overruns directory at %d" ino !pos;
              stop := true
            end
            else if e_ino < Ext2.root_ino || e_ino >= Ext2.ninodes then begin
              violation "inode %d: dirent points at invalid inode %d" ino e_ino;
              pos := !pos + 6 + nlen
            end
            else begin
              if not (bit_get Ext2.inode_bitmap e_ino) then
                violation "inode %d: dirent points at free inode %d" ino e_ino
              else begin
                count_name e_ino;
                if is_dir e_ino then walk_dir e_ino
              end;
              pos := !pos + 6 + nlen
            end
          end
        done
      end
    in
    walk_dir Ext2.root_ino;
    (* Link counts and reachability. *)
    List.iter
      (fun ino ->
        let nlink = di ino di_nlink in
        let named = match Hashtbl.find_opt names ino with Some r -> !r | None -> 0 in
        let expected = if ino = Ext2.root_ino then named + 2 else named in
        if ino <> Ext2.root_ino && named = 0 then
          violation "inode %d is allocated but unreachable from the root" ino
        else if nlink <> expected then
          violation "inode %d has nlink %d but %d directory entries" ino nlink named)
      (List.rev !allocated);
    List.rev !bad
  end
