(* Descriptor layout shared with the device model (see Machine.Virtio_blk). *)
let desc_type = 0
let desc_len = 4
let desc_sector = 8
let desc_data = 16
let desc_status = 24
let desc_next = 32
let desc_done_ts = 40 (* device-written completion timestamp (cycles) *)
let status_pending = 0xff

type data_buf = Pooled of Ostd.Dma.Stream.t | Dynamic of Ostd.Dma.Stream.t

type pending = {
  bio : Block.bio;
  desc : Ostd.Dma.Stream.t;
  desc_pooled : bool;
  data : data_buf option;
}

type state = {
  window : Ostd.Io_mem.t;
  dev_id : int;
  desc_pool : Ostd.Dma.Pool.t;
  data_pool : Ostd.Dma.Pool.t;
  mutable pending : pending list;
  capacity : int;
}

let state : state option ref = ref None

let st () =
  match !state with
  | Some s -> s
  | None -> Ostd.Panic.panic "virtio-blk driver not initialised"

let in_flight () = match !state with Some s -> List.length s.pending | None -> 0

let stream_frame = Ostd.Dma.Stream.frame

let take_desc_buf s =
  let p = Sim.Profile.get () in
  if p.Sim.Profile.dma_pooling then
    match Ostd.Dma.Pool.alloc s.desc_pool with
    | Some b -> (b, true)
    | None -> (Ostd.Dma.Stream.map (Ostd.Frame.alloc ~untyped:true ()) ~dev:s.dev_id, false)
  else (Ostd.Dma.Stream.map (Ostd.Frame.alloc ~untyped:true ()) ~dev:s.dev_id, false)

let take_data_buf s =
  let p = Sim.Profile.get () in
  if p.Sim.Profile.dma_pooling && p.Sim.Profile.blk_pooling_complete then
    match Ostd.Dma.Pool.alloc s.data_pool with
    | Some b -> Pooled b
    | None -> Dynamic (Ostd.Dma.Stream.map (Ostd.Frame.alloc ~untyped:true ()) ~dev:s.dev_id)
  else
    (* The incomplete-pooling path the paper describes for its block
       driver: data pages are mapped per request, so every I/O pays the
       map/unmap plus IOTLB invalidation. *)
    Dynamic (Ostd.Dma.Stream.map (Ostd.Frame.alloc ~untyped:true ()) ~dev:s.dev_id)

let release_data_buf s = function
  | None -> ()
  | Some (Pooled b) -> Ostd.Dma.Pool.release s.data_pool b
  | Some (Dynamic b) -> Ostd.Dma.Stream.unmap b

(* Build the DMA descriptor (and data buffer) for one bio. Writes every
   descriptor field including a zero chain link; [link] stitches chains
   afterwards. Does not ring the doorbell. *)
let prepare s bio =
  let desc, desc_pooled = take_desc_buf s in
  let dframe = stream_frame desc in
  let op_code, data_buf =
    match Block.bio_op bio with
    | Block.Flush -> (2, None)
    | Block.Read -> (0, Some (take_data_buf s))
    | (Block.Write | Block.Write_fua) as op ->
      let db = take_data_buf s in
      let dst = match db with Pooled b | Dynamic b -> stream_frame b in
      (match Block.bio_frame bio with
      | Some src ->
        Sim.Cost.charge_memcpy (Block.bio_len bio);
        Ostd.Untyped.copy ~src ~src_off:0 ~dst ~dst_off:0 ~len:(Block.bio_len bio)
      | None -> ());
      ((if op = Block.Write_fua then 3 else 1), Some db)
  in
  let data_paddr =
    match data_buf with
    | Some (Pooled b) | Some (Dynamic b) -> Ostd.Dma.Stream.paddr b
    | None -> 0
  in
  Ostd.Untyped.write_u32 dframe ~off:desc_type op_code;
  Ostd.Untyped.write_u32 dframe ~off:desc_len (Block.bio_len bio);
  Ostd.Untyped.write_u64 dframe ~off:desc_sector (Int64.of_int (Block.bio_sector bio));
  Ostd.Untyped.write_u64 dframe ~off:desc_data (Int64.of_int data_paddr);
  Ostd.Untyped.write_u32 dframe ~off:desc_status status_pending;
  Ostd.Untyped.write_u64 dframe ~off:desc_next 0L;
  Ostd.Untyped.write_u64 dframe ~off:desc_done_ts 0L;
  { bio; desc; desc_pooled; data = data_buf }

let link prev next =
  Ostd.Untyped.write_u64 (stream_frame prev.desc) ~off:desc_next
    (Int64.of_int (Ostd.Dma.Stream.paddr next.desc))

(* Ring the doorbell for the chain head — with suppression, as with the
   NIC: a busy device keeps pulling from its queue without another VM
   exit. [device_idle] must be sampled before the requests are added to
   [s.pending]. *)
let ring s ~device_idle head =
  let head_paddr = Int64.of_int (Ostd.Dma.Stream.paddr head.desc) in
  if device_idle then begin
    Sim.Stats.incr "blk.doorbell";
    Ostd.Io_mem.doorbell s.window ~off:Machine.Virtio_blk.reg_queue_notify head_paddr
  end
  else begin
    Sim.Stats.incr "blk.notify_suppressed";
    Sim.Cost.charge 60;
    Machine.Mmio.write
      ~addr:(Ostd.Io_mem.base s.window + Machine.Virtio_blk.reg_queue_notify)
      ~len:8 head_paddr
  end

let submit bio =
  let s = st () in
  let p = prepare s bio in
  Block.note_issued bio;
  let device_idle = s.pending = [] in
  s.pending <- p :: s.pending;
  ring s ~device_idle p

(* Scatter-gather submission: one descriptor chain, one doorbell, and —
   on the device side — one completion interrupt for the whole run.
   Each bio still completes (or times out) individually via [reap]. *)
let submit_many bios =
  let s = st () in
  match List.map (prepare s) bios with
  | [] -> ()
  | head :: _ as ps ->
    let rec link_all = function
      | a :: (b :: _ as tl) ->
        link a b;
        link_all tl
      | _ -> ()
    in
    link_all ps;
    List.iter (fun p -> Block.note_issued p.bio) ps;
    let device_idle = s.pending = [] in
    s.pending <- List.rev_append ps s.pending;
    ring s ~device_idle head

(* Timeout path: the block layer has given up on this bio, but the
   device may still DMA into its buffers later. Quarantine them — unmap
   both streams without ever returning them to a pool, so a late write
   faults at the IOMMU instead of landing in reused memory (the Inv. 6
   story: hostile or stuck devices cannot corrupt kernel state). The
   leaked pool slots are the price of that safety, counted under
   [blk.pool_leaked] so /proc/kstat makes the shrinkage observable. *)
let cancel bio =
  let s = st () in
  let stale, keep = List.partition (fun p -> p.bio == bio) s.pending in
  s.pending <- keep;
  List.iter
    (fun p ->
      Sim.Stats.incr "virtio_blk.quarantined";
      if p.desc_pooled then Sim.Stats.incr "blk.pool_leaked";
      (match p.data with
      | Some (Pooled b) ->
        Sim.Stats.incr "blk.pool_leaked";
        Ostd.Dma.Stream.unmap b
      | Some (Dynamic b) -> Ostd.Dma.Stream.unmap b
      | None -> ());
      Ostd.Dma.Stream.unmap p.desc)
    stale

(* Bottom half: reap every descriptor the device has finished. *)
let reap () =
  let s = st () in
  let done_, still =
    List.partition
      (fun p -> Ostd.Untyped.read_u32 (stream_frame p.desc) ~off:desc_status <> status_pending)
      s.pending
  in
  s.pending <- still;
  List.iter
    (fun p ->
      let status = Ostd.Untyped.read_u32 (stream_frame p.desc) ~off:desc_status in
      (if status = 0 && Block.bio_op p.bio = Block.Read then
         match (Block.bio_frame p.bio, p.data) with
         | Some dst, Some (Pooled b | Dynamic b) ->
           Sim.Cost.charge_memcpy (Block.bio_len p.bio);
           Ostd.Untyped.copy ~src:(stream_frame b) ~src_off:0 ~dst ~dst_off:0
             ~len:(Block.bio_len p.bio)
         | _ -> ());
      release_data_buf s p.data;
      let done_ts = Ostd.Untyped.read_u64 (stream_frame p.desc) ~off:desc_done_ts in
      if Int64.compare done_ts 0L > 0 then Block.note_dev_done p.bio done_ts;
      if p.desc_pooled then Ostd.Dma.Pool.release s.desc_pool p.desc
      else Ostd.Dma.Stream.unmap p.desc;
      Block.complete_bio p.bio ~status:(if status = 0 then 0 else Errno.eio))
    done_

let init () =
  match Ostd.Bus_probe.find `Blk with
  | None -> Ostd.Panic.panic "virtio-blk: no device on the bus"
  | Some dev ->
    let window =
      match Ostd.Io_mem.acquire ~base:dev.Ostd.Bus_probe.mmio_base ~size:dev.Ostd.Bus_probe.mmio_size with
      | Ok w -> w
      | Error e -> Ostd.Panic.panic e
    in
    let capacity =
      Int64.to_int (Ostd.Io_mem.read_once window ~off:Machine.Virtio_blk.reg_capacity ~len:8)
    in
    let dev_id = dev.Ostd.Bus_probe.dev_id in
    let s =
      {
        window;
        dev_id;
        desc_pool = Ostd.Dma.Pool.create ~dev:dev_id ~buf_pages:1 ~count:64;
        data_pool = Ostd.Dma.Pool.create ~dev:dev_id ~buf_pages:1 ~count:64;
        pending = [];
        capacity;
      }
    in
    state := Some s;
    let line = Ostd.Irq.claim ~vector:dev.Ostd.Bus_probe.vector ~name:"virtio-blk" () in
    Ostd.Irq.set_handler line (fun () ->
        Sim.Stats.incr "blk.irq";
        Softirq.raise_softirq reap);
    Ostd.Irq.bind_device line ~dev:dev_id;
    let module D = struct
      let capacity_sectors () = (st ()).capacity

      let submit = submit

      let submit_many = submit_many

      let cancel = cancel
    end in
    Block.register_driver (module D)
