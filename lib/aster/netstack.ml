let loopback_ip = Packet.ip_of_string "127.0.0.1"

(* A plugged TX queue flushes when the burst reaches this many segments,
   mirroring the block layer's 32-bio descriptor-chain limit. *)
let burst_limit = 32

type t = {
  addr : int;
  host : bool;
  mutable ext_tx : Packet.t -> unit;
  mutable ext_tx_many : (Packet.t list -> unit) option;
  mutable tcp_rx : Packet.t -> unit;
  mutable udp_rx : Packet.t -> unit;
  mutable tx_err : Packet.t -> unit;
  mutable plug : Packet.t list; (* reversed burst under collection *)
  mutable plug_n : int;
  mutable flush_scheduled : bool;
  mutable ntx : int;
  mutable nrx : int;
}

(* Every live stack, so the syscall boundary can flush pending bursts
   without knowing who owns them. Reset at boot: stale stacks from a
   previous machine must not be flushed into recycled device state. *)
let stacks : t list ref = ref []

let reset_registry () = stacks := []

let create ~ip ~host =
  let t =
    {
      addr = ip;
      host;
      ext_tx = (fun _ -> ());
      ext_tx_many = None;
      tcp_rx = (fun _ -> ());
      udp_rx = (fun _ -> ());
      tx_err = (fun _ -> ());
      plug = [];
      plug_n = 0;
      flush_scheduled = false;
      ntx = 0;
      nrx = 0;
    }
  in
  stacks := t :: !stacks;
  t

let ip t = t.addr

let is_host t = t.host

let set_ext_tx t f = t.ext_tx <- f

let set_ext_tx_many t f = t.ext_tx_many <- Some f

let set_tcp_rx t f = t.tcp_rx <- f

let set_udp_rx t f = t.udp_rx <- f

let set_tx_err t f = t.tx_err <- f

let tx_error t p = t.tx_err p

let charge t n = if not t.host then Sim.Cost.charge n

let proto_name = function Packet.Tcp -> "tcp" | Packet.Udp -> "udp"

let packet_args (p : Packet.t) =
  Printf.sprintf "proto=%s sport=%d dport=%d len=%d" (proto_name p.Packet.proto)
    p.Packet.src_port p.Packet.dst_port
    (Bytes.length p.Packet.payload)

let burst_args ps =
  let bytes = List.fold_left (fun a (p : Packet.t) -> a + Bytes.length p.Packet.payload) 0 ps in
  Printf.sprintf "nseg=%d bytes=%d" (List.length ps) bytes

(* Probe ctx thunks: [| bytes; nseg |] for one packet or a burst. *)
let packet_ctx (p : Packet.t) () = [| Int64.of_int (Bytes.length p.Packet.payload); 1L |]

let burst_ctx ps () =
  let bytes = List.fold_left (fun a (p : Packet.t) -> a + Bytes.length p.Packet.payload) 0 ps in
  [| Int64.of_int bytes; Int64.of_int (List.length ps) |]

let dispatch_proto t (p : Packet.t) =
  t.nrx <- t.nrx + 1;
  match p.Packet.proto with
  | Packet.Tcp -> t.tcp_rx p
  | Packet.Udp -> t.udp_rx p

(* kprof: protocol processing on both paths folds under "net". *)
let dispatch t (p : Packet.t) =
  Sim.Prof.scope "net" (fun () ->
      Sim.Trace.emit Sim.Trace.Net "rx" (fun () -> packet_args p);
      Sim.Trace.fire Sim.Trace.P_net_rx (packet_ctx p);
      dispatch_proto t p)

let rx t p = dispatch t p

(* NAPI-coalesced delivery from the driver's bottom half: one tracepoint
   for the whole reaped batch, not one per segment. *)
let rx_many t ps =
  if ps <> [] then
    Sim.Prof.scope "net" (fun () ->
        Sim.Trace.emit Sim.Trace.Net "rx" (fun () -> burst_args ps);
        Sim.Trace.fire Sim.Trace.P_net_rx (burst_ctx ps);
        List.iter (dispatch_proto t) ps)

let batching_on t =
  (not t.host)
  && t.ext_tx_many <> None
  && (Sim.Profile.get ()).Sim.Profile.net_tx_batching

(* Hand the collected burst to the driver's scatter-gather path: one
   descriptor chain, one doorbell, one tracepoint. *)
let flush t =
  if t.plug_n > 0 then begin
    let ps = List.rev t.plug in
    t.plug <- [];
    t.plug_n <- 0;
    (* kspan: time spent parked in the plug queue is its own leg; the
       driver's service/IRQ split picks up from here. *)
    let now = Sim.Clock.now () in
    List.iter
      (fun (p : Packet.t) ->
        if p.Packet.span > 0 && Int64.compare p.Packet.span_t0 0L > 0 then begin
          Sim.Span.add_to p.Packet.span "net.plug" p.Packet.span_t0 now;
          p.Packet.span_t0 <- now
        end)
      ps;
    Sim.Prof.scope "net" (fun () ->
        Sim.Stats.incr "net.burst";
        Sim.Trace.emit Sim.Trace.Net "tx" (fun () -> burst_args ps);
        Sim.Trace.fire Sim.Trace.P_net_tx (burst_ctx ps);
        match t.ext_tx_many with
        | Some f -> f ps
        | None -> List.iter t.ext_tx ps)
  end

let flush_all () = List.iter flush !stacks

let send t p =
  Sim.Prof.scope "net" (fun () ->
      t.ntx <- t.ntx + 1;
      (* Adopt the sender's span for segments built outside task context
         (pure ACKs from event handlers keep span 0); the TX-path entry
         stamp restarts per transmission attempt. *)
      if p.Packet.span = 0 then p.Packet.span <- Sim.Span.current ();
      p.Packet.span_t0 <- Sim.Clock.now ();
      let dst = p.Packet.dst_ip in
      if dst = loopback_ip || dst = t.addr then begin
        Sim.Trace.emit Sim.Trace.Net "tx" (fun () -> packet_args p);
        Sim.Trace.fire Sim.Trace.P_net_tx (packet_ctx p);
        (* Loopback: softirq-style asynchronous hand-off. Delivery is the
           end of the packet's life, so zero-copy pins release here — the
           receiver copied the payload into its own buffer. *)
        charge t (Sim.Cost.c ()).Sim.Profile.loopback_delivery;
        ignore
          (Sim.Events.schedule_after 0 (fun () ->
               dispatch t p;
               Packet.release_pins p))
      end
      else if batching_on t then begin
        (* Plug: collect the segment; the burst flushes at the syscall
           boundary, at [burst_limit], or via the scheduled fallback for
           segments emitted from event context (RTO, delayed ACK). *)
        Sim.Stats.incr "net.tx_queued";
        t.plug <- p :: t.plug;
        t.plug_n <- t.plug_n + 1;
        if t.plug_n >= burst_limit then flush t
        else if not t.flush_scheduled then begin
          t.flush_scheduled <- true;
          ignore
            (Sim.Events.schedule_after 0 (fun () ->
                 t.flush_scheduled <- false;
                 flush t))
        end
      end
      else begin
        Sim.Trace.emit Sim.Trace.Net "tx" (fun () -> packet_args p);
        Sim.Trace.fire Sim.Trace.P_net_tx (packet_ctx p);
        t.ext_tx p
      end)

let packets_tx t = t.ntx

let packets_rx t = t.nrx
