let loopback_ip = Packet.ip_of_string "127.0.0.1"

type t = {
  addr : int;
  host : bool;
  mutable ext_tx : Packet.t -> unit;
  mutable tcp_rx : Packet.t -> unit;
  mutable udp_rx : Packet.t -> unit;
  mutable ntx : int;
  mutable nrx : int;
}

let create ~ip ~host =
  {
    addr = ip;
    host;
    ext_tx = (fun _ -> ());
    tcp_rx = (fun _ -> ());
    udp_rx = (fun _ -> ());
    ntx = 0;
    nrx = 0;
  }

let ip t = t.addr

let is_host t = t.host

let set_ext_tx t f = t.ext_tx <- f

let set_tcp_rx t f = t.tcp_rx <- f

let set_udp_rx t f = t.udp_rx <- f

let charge t n = if not t.host then Sim.Cost.charge n

let proto_name = function Packet.Tcp -> "tcp" | Packet.Udp -> "udp"

let packet_args (p : Packet.t) =
  Printf.sprintf "proto=%s sport=%d dport=%d len=%d" (proto_name p.Packet.proto)
    p.Packet.src_port p.Packet.dst_port
    (Bytes.length p.Packet.payload)

(* kprof: protocol processing on both paths folds under "net". *)
let dispatch t (p : Packet.t) =
  Sim.Prof.scope "net" (fun () ->
      t.nrx <- t.nrx + 1;
      Sim.Trace.emit Sim.Trace.Net "rx" (fun () -> packet_args p);
      match p.Packet.proto with
      | Packet.Tcp -> t.tcp_rx p
      | Packet.Udp -> t.udp_rx p)

let send t p =
  Sim.Prof.scope "net" (fun () ->
      t.ntx <- t.ntx + 1;
      Sim.Trace.emit Sim.Trace.Net "tx" (fun () -> packet_args p);
      let dst = p.Packet.dst_ip in
      if dst = loopback_ip || dst = t.addr then begin
        (* Loopback: softirq-style asynchronous hand-off. *)
        charge t (Sim.Cost.c ()).Sim.Profile.loopback_delivery;
        ignore (Sim.Events.schedule_after 0 (fun () -> dispatch t p))
      end
      else t.ext_tx p)

let rx t p = dispatch t p

let packets_tx t = t.ntx

let packets_rx t = t.nrx
