(** Unix-domain stream sockets: an in-kernel byte channel between two
    endpoints, with a filesystem-bound listener namespace. Buffer size
    and per-op cost follow the installed profile, which is where the
    bw_unix gap between the kernels comes from. *)

type endpoint

val socketpair : unit -> endpoint * endpoint

type listener

val listen : path:string -> (listener, int) result
val connect : path:string -> (endpoint, int) result
val accept : listener -> endpoint

(** Non-blocking accept: [None] when the backlog is empty. *)
val accept_opt : listener -> endpoint option
val close_listener : listener -> unit

val send : ?nonblock:bool -> endpoint -> buf:bytes -> pos:int -> len:int -> (int, int) result
val recv : ?nonblock:bool -> endpoint -> buf:bytes -> pos:int -> len:int -> (int, int) result
val close : endpoint -> unit
val readable : endpoint -> bool

val pollable : endpoint -> Pollable.t
(** Endpoint readiness: POLLIN on buffered bytes or EOF, POLLOUT on
    send-ring space, POLLHUP|POLLRDHUP once either side closed. *)

val listener_pollable : listener -> Pollable.t

val reset_namespace : unit -> unit
