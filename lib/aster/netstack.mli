(** An instantiable network stack core: routing, loopback, protocol
    dispatch, and the TX plug/flush burst collector.

    The guest kernel owns one instance (loopback + the virtio-net route);
    host-side benchmark clients own another bound directly to the wire.
    Host instances charge no guest CPU cycles — the paper's clients run
    outside the VM.

    With the [net_tx_batching] profile knob, outgoing segments for the
    external interface are plugged into a per-stack burst instead of
    being handed to the driver one by one. The burst flushes through the
    driver's scatter-gather path (one descriptor chain, one doorbell)
    when it reaches {!burst_limit} segments, at the syscall boundary
    ({!flush_all}), or via a scheduled fallback that covers segments
    emitted from event context (retransmit timers, delayed ACKs) and
    tasks that block mid-syscall. *)

type t

val create : ip:int -> host:bool -> t

val ip : t -> int
val is_host : t -> bool

val loopback_ip : int

val burst_limit : int
(** Max segments collected into one TX burst (32, like the block
    pipeline's chain limit). *)

val set_ext_tx : t -> (Packet.t -> unit) -> unit
(** Transmit function for non-loopback destinations (the NIC driver or
    the host's wire endpoint). *)

val set_ext_tx_many : t -> (Packet.t list -> unit) -> unit
(** Scatter-gather transmit for a whole burst. Without it (or with
    [net_tx_batching] off) segments go out one by one via [ext_tx]. *)

val set_tcp_rx : t -> (Packet.t -> unit) -> unit
val set_udp_rx : t -> (Packet.t -> unit) -> unit

val set_tx_err : t -> (Packet.t -> unit) -> unit
(** Asynchronous transmit failure (driver gave up on a frame after
    retries, or quarantined its buffer past the burst deadline). The
    protocol layer records it against the owning connection; the data
    itself is repaired by normal retransmission. *)

val tx_error : t -> Packet.t -> unit

val send : t -> Packet.t -> unit
(** Route: destinations equal to [loopback_ip] or the stack's own address
    go through the loopback (softirq hand-off cost, asynchronous
    delivery); everything else is plugged into the TX burst or goes out
    the external interface directly. *)

val flush : t -> unit
(** Flush this stack's pending TX burst, if any. *)

val flush_all : unit -> unit
(** Flush every live stack's pending burst — called at the syscall
    boundary so a burst never outlives the syscall that filled it. *)

val reset_registry : unit -> unit
(** Forget all stacks (machine reboot): stale stacks must not flush
    into recycled device state. *)

val rx : t -> Packet.t -> unit
(** Entry point for inbound packets from the external interface. *)

val rx_many : t -> Packet.t list -> unit
(** Coalesced entry point for a reaped RX batch: one tracepoint for the
    batch, then per-packet protocol dispatch. *)

val charge : t -> int -> unit
(** Charge cycles only when this is the guest stack. *)

val packets_tx : t -> int
val packets_rx : t -> int
