type t = {
  devices : Machine.Board.devices;
  stack : Netstack.t;
  tcp : Tcp.engine;
  udp : Udp.engine;
}

let guest_ip = Packet.ip_of_string "10.0.2.15"

let host_ip = Packet.ip_of_string "10.0.2.2"

(* Extra probe program texts loaded right after the watchdogs on every
   boot — the CLI's `probe run --prog` stages template text here before
   the workload boots its kernel. A staged program that fails the
   verifier is a caller bug, so be loud. *)
let boot_probes : string list ref = ref []

let reset_services () =
  Vfs.reset ();
  Netstack.reset_registry ();
  Block.reset ();
  Jbd.reset ();
  Unix_sock.reset_namespace ();
  Strace.reset ();
  Process.reset ();
  Kprobe.Registry.reset ();
  Timer_wheel.reset_global ();
  Epoll.reset_ids ();
  Ktime.stop_ticker ()

let mount_filesystems ~format_disk =
  let root = Ramfs.create_root () in
  Vfs.mount_root root;
  (* Mountpoint directories. *)
  List.iter
    (fun name ->
      match root.Vfs.ops.Vfs.create root name Vfs.Dir ~mode:0o755 with
      | Ok _ -> ()
      | Error e -> Ostd.Panic.panicf "boot: mkdir /%s failed (%d)" name e)
    [ "proc"; "ext2"; "tmp"; "dev" ];
  (match root.Vfs.ops.Vfs.lookup root "dev" with
  | Some dev_dir -> Devfs.populate dev_dir
  | None -> ());
  Vfs.mount "/proc" (Procfs.create_root ());
  if format_disk then Ext2.mkfs ();
  Vfs.mount "/ext2" (Ext2.mount ())

let boot ?profile ?(frames = 16384) ?disk ?(disk_mb = 64) ?(format_disk = true) () =
  (match profile with Some p -> Sim.Profile.set p | None -> ());
  Ostd.Boot.init ~frames ();
  reset_services ();
  Sched_policy.install ();
  ignore (Buddy.install ());
  Slab_policy.install_global_heap ();
  let devices = Machine.Board.attach_default_devices ?disk ~disk_mb () in
  Softirq.install ();
  Virtio_blk_drv.init ();
  let stack = Netstack.create ~ip:guest_ip ~host:false in
  Virtio_net_drv.init stack;
  let tcp =
    Tcp.create_engine stack ~cc:(Sim.Profile.get ()).Sim.Profile.tcp_congestion_control
  in
  let udp = Udp.create_engine stack in
  Syscalls.init_net stack tcp udp;
  Syscalls.install ();
  (* Always-on anomaly watchdogs: hung-task, syscall-latency SLO and
     IRQ-storm sentinels ride the probe plane from the first dispatch.
     Detach with [Kprobe.Registry.reset] for probe-free baselines. *)
  Kprobe.Templates.install_watchdogs ();
  List.iter
    (fun text ->
      match Kprobe.Registry.load_text text with
      | Ok _ -> ()
      | Error e -> failwith ("boot: staged probe program rejected: " ^ e))
    !boot_probes;
  mount_filesystems ~format_disk;
  { devices; stack; tcp; udp }

type host = { hstack : Netstack.t; htcp : Tcp.engine; hudp : Udp.engine }

let attach_host t =
  let hstack = Netstack.create ~ip:host_ip ~host:true in
  let ep = t.devices.Machine.Board.host_endpoint in
  (* The host's Linux stack always runs TSO: its TCP hands super-segments
     down (seg_limit = gso_max_size, see {!Tcp.make_conn}) and its NIC
     splits them into MSS wire frames here. Unconditional — no existing
     host sender emits more than one MSS per segment, so sub-MSS traffic
     passes through [tso_split] unchanged. Host-side work is uncharged. *)
  Netstack.set_ext_tx hstack (fun pkt ->
      List.iter (Machine.Wire.send ep)
        (Machine.Pktfmt.tso_split ~gso_size:Packet.mss (Packet.encode pkt)));
  Machine.Wire.on_receive ep (fun raw ->
      match Packet.decode raw with
      | Some pkt -> Netstack.rx hstack pkt
      | None -> Sim.Stats.incr "host.bad_packet");
  { hstack; htcp = Tcp.create_engine hstack ~cc:true; hudp = Udp.create_engine hstack }

let run () = Ostd.Task.run ()

let run_until = Ostd.Task.run_until
