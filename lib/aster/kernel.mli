(** Whole-kernel boot: machine, OSTD, injected policies, drivers, file
    systems, network engines, and the syscall table — the paper's Fig. 4
    assembled.

    [boot] follows the installed {!Sim.Profile} (call [Sim.Profile.set]
    first, or pass [~profile]). The returned handles expose the host side
    of the virtio-net wire for benchmark clients. *)

type t = {
  devices : Machine.Board.devices;
  stack : Netstack.t;
  tcp : Tcp.engine;
  udp : Udp.engine;
}

val guest_ip : int
val host_ip : int

val boot_probes : string list ref
(** Extra probe program texts loaded (after the always-on watchdogs) on
    every boot; staged by the CLI's [probe run --prog]. A staged program
    the verifier rejects fails the boot loudly. *)

val boot :
  ?profile:Sim.Profile.t ->
  ?frames:int ->
  ?disk:Machine.Virtio_blk.disk ->
  ?disk_mb:int ->
  ?format_disk:bool ->
  unit ->
  t
(** Fresh machine; mounts ramfs at /, procfs at /proc, ext2 at /ext2
    (formatting the disk when [format_disk], default true), and creates
    /tmp. Pass [disk] (with [~format_disk:false]) to boot against an
    existing — e.g. crash-survived — disk image: mount then replays the
    journal. *)

type host = { hstack : Netstack.t; htcp : Tcp.engine; hudp : Udp.engine }

val attach_host : t -> host
(** Wire a host-side stack (congestion control on, zero guest cost) to
    the tap endpoint. *)

val run : unit -> unit
(** Dispatch until the machine is fully idle. *)

val run_until : (unit -> bool) -> unit
