(** Virtio network driver (de-privileged, OSTD-API-only).

    Wires a {!Netstack}'s external route to the virtio NIC: the
    per-packet path and the scatter-gather burst path (one descriptor
    chain linked through the u64 next field, one doorbell with virtio
    event suppression, one coalesced completion interrupt reaped in the
    bottom half). With DMA pooling on (Asterinas default), TX and RX
    buffers are mapped once and recycled — the paper credits exactly
    this for the NIC's near-zero IOMMU overhead; without it every packet
    pays map/unmap plus IOTLB invalidation (Fig. 6).

    Failure handling mirrors the block pipeline: a mid-burst error
    splits the burst and resubmits the failing frame individually
    ([net.burst_split]); a completion that never arrives trips the burst
    deadline and the buffer is quarantined — unmapped but never returned
    to the pool, counted under [net.pool_leaked] — before the frame is
    reported upstack via {!Netstack.tx_error}. *)

val init : Netstack.t -> unit

val tx_packets : unit -> int
val rx_packets : unit -> int

val tx_in_flight : unit -> int
(** TX buffers submitted and not yet reaped or quarantined. *)
