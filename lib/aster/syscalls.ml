module N = Syscall_nr

let net : (Netstack.t * Tcp.engine * Udp.engine) option ref = ref None

let init_net stack tcp udp = net := Some (stack, tcp, udp)

let the_net () =
  match !net with
  | Some n -> n
  | None -> Ostd.Panic.panic "Syscalls: network engines not initialised"

(* --- User memory access with kernel-side fault handling --- *)

let vm proc = Mm.vmspace (Process.mm proc)

let rec user_read proc ~vaddr ~len =
  let buf = Bytes.create len in
  match Ostd.Vmspace.copy_out (vm proc) ~vaddr ~buf ~pos:0 ~len with
  | Ok () -> Ok buf
  | Error { Ostd.Vmspace.vaddr = fa; write } ->
    if Mm.handle_fault (Process.mm proc) ~vaddr:fa ~write then user_read proc ~vaddr ~len
    else Error Errno.efault

let rec user_write proc ~vaddr buf =
  match Ostd.Vmspace.copy_in (vm proc) ~vaddr ~buf ~pos:0 ~len:(Bytes.length buf) with
  | Ok () -> Ok ()
  | Error { Ostd.Vmspace.vaddr = fa; write } ->
    if Mm.handle_fault (Process.mm proc) ~vaddr:fa ~write then user_write proc ~vaddr buf
    else Error Errno.efault

let read_str proc vaddr =
  (* NUL-terminated, capped at a page. *)
  let rec scan acc off =
    if off >= 4096 then Error Errno.einval
    else
      match user_read proc ~vaddr:(vaddr + off) ~len:(min 64 (4096 - off)) with
      | Error e -> Error e
      | Ok chunk -> (
        match Bytes.index_opt chunk '\000' with
        | Some i -> Ok (acc ^ Bytes.sub_string chunk 0 i)
        | None -> scan (acc ^ Bytes.to_string chunk) (off + Bytes.length chunk))
  in
  scan "" 0

let read_str_array proc vaddr =
  (* NULL-terminated array of string pointers. *)
  let rec go i acc =
    if i > 64 then Ok (List.rev acc)
    else
      match user_read proc ~vaddr:(vaddr + (8 * i)) ~len:8 with
      | Error e -> Error e
      | Ok b -> (
        let p = Int64.to_int (Bytes.get_int64_le b 0) in
        if p = 0 then Ok (List.rev acc)
        else
          match read_str proc p with
          | Error e -> Error e
          | Ok s -> go (i + 1) (s :: acc))
  in
  if vaddr = 0 then Ok [] else go 0 []

(* --- Result plumbing: handlers return (int64, errno) results --- *)

let ok n = Ok (Int64.of_int n)
let ok64 v = Ok v
let err e = Error e

let lift = function Ok v -> ok v | Error e -> err e

let file_of proc fd =
  match File.Table.lookup (Process.fdt proc) (Int64.to_int fd) with
  | Some f -> Ok f
  | None -> Error Errno.ebadf

let int_arg (args : int64 array) i = Int64.to_int args.(i)

(* --- FIFO plumbing: named pipes get their ring on first open --- *)

let fifo_pipes : (int, Pipe.t) Hashtbl.t = Hashtbl.create 8

let fifo_pipe (inode : Vfs.inode) =
  match Hashtbl.find_opt fifo_pipes inode.Vfs.ino with
  | Some p -> p
  | None ->
    let p = Pipe.create () in
    Hashtbl.replace fifo_pipes inode.Vfs.ino p;
    p

(* --- read/write on each file flavour --- *)

let do_read_desc (f : File.t) ~len =
  let buf = Bytes.create len in
  let nonblock = f.File.flags land File.o_nonblock <> 0 in
  match f.File.desc with
  | File.Inode_file inode -> (
    Vfs.touch_atime inode;
    match inode.Vfs.ops.Vfs.read inode ~pos:f.File.pos ~buf ~boff:0 ~len with
    | Ok n ->
      f.File.pos <- f.File.pos + n;
      Ok (Bytes.sub buf 0 n)
    | Error e -> Error e)
  | File.Pipe_read p -> (
    match Pipe.read ~nonblock p ~buf ~pos:0 ~len with
    | Ok n -> Ok (Bytes.sub buf 0 n)
    | Error e -> Error e)
  | File.Pipe_write _ -> Error Errno.ebadf
  | File.Epoll _ -> Error Errno.einval
  | File.Socket s -> (
    match s.File.st with
    | File.S_tcp_conn c -> (
      match Tcp.recv ~nonblock c ~buf ~pos:0 ~len with
      | Ok n -> Ok (Bytes.sub buf 0 n)
      | Error e -> Error e)
    | File.S_unix_conn ep -> (
      match Unix_sock.recv ~nonblock ep ~buf ~pos:0 ~len with
      | Ok n -> Ok (Bytes.sub buf 0 n)
      | Error e -> Error e)
    | File.S_udp u -> (
      match Udp.recvfrom ~nonblock u ~buf ~pos:0 ~len with
      | Ok (n, _, _) -> Ok (Bytes.sub buf 0 n)
      | Error e -> Error e)
    | _ -> Error Errno.enotconn)

(* [?len] lets callers hand over a partially-filled buffer (sendfile's
   reused bounce buffer) without a [Bytes.sub] copy per chunk. *)
let do_write_desc ?len proc (f : File.t) data =
  ignore proc;
  let len = match len with Some n -> n | None -> Bytes.length data in
  match f.File.desc with
  | File.Inode_file inode -> (
    let pos = if f.File.flags land File.o_append <> 0 then inode.Vfs.size else f.File.pos in
    match inode.Vfs.ops.Vfs.write inode ~pos ~buf:data ~boff:0 ~len with
    | Ok n ->
      f.File.pos <- pos + n;
      Ok n
    | Error e -> Error e)
  | File.Pipe_write p -> Pipe.write ~nonblock:(f.File.flags land File.o_nonblock <> 0) p ~buf:data ~pos:0 ~len
  | File.Pipe_read _ -> Error Errno.ebadf
  | File.Epoll _ -> Error Errno.einval
  | File.Socket s -> (
    let nonblock = f.File.flags land File.o_nonblock <> 0 in
    match s.File.st with
    | File.S_tcp_conn c -> Tcp.send ~nonblock c ~buf:data ~pos:0 ~len
    | File.S_unix_conn ep -> Unix_sock.send ~nonblock ep ~buf:data ~pos:0 ~len
    | _ -> Error Errno.enotconn)

(* --- Individual syscalls --- *)

let sys_read proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    let len = int_arg args 2 in
    match do_read_desc f ~len with
    | Error e -> err e
    | Ok data -> (
      match user_write proc ~vaddr:(int_arg args 1) data with
      | Ok () -> ok (Bytes.length data)
      | Error e -> err e))

let sys_write proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    let len = int_arg args 2 in
    Strace.record_size ~nr:N.write ~size:len;
    match user_read proc ~vaddr:(int_arg args 1) ~len with
    | Error e -> err e
    | Ok data -> lift (do_write_desc proc f data))

let sys_pread proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match f.File.desc with
    | File.Inode_file inode -> (
      let len = int_arg args 2 and off = int_arg args 3 in
      let buf = Bytes.create len in
      match inode.Vfs.ops.Vfs.read inode ~pos:off ~buf ~boff:0 ~len with
      | Error e -> err e
      | Ok n -> (
        match user_write proc ~vaddr:(int_arg args 1) (Bytes.sub buf 0 n) with
        | Ok () -> ok n
        | Error e -> err e))
    | _ -> err Errno.espipe)

let sys_pwrite proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match f.File.desc with
    | File.Inode_file inode -> (
      let len = int_arg args 2 and off = int_arg args 3 in
      Strace.record_size ~nr:N.pwrite64 ~size:len;
      match user_read proc ~vaddr:(int_arg args 1) ~len with
      | Error e -> err e
      | Ok data -> lift (inode.Vfs.ops.Vfs.write inode ~pos:off ~buf:data ~boff:0 ~len))
    | _ -> err Errno.espipe)

let iovec_list proc vaddr count =
  let rec go i acc =
    if i >= count then Ok (List.rev acc)
    else
      match user_read proc ~vaddr:(vaddr + (16 * i)) ~len:16 with
      | Error e -> Error e
      | Ok b ->
        go (i + 1)
          ((Int64.to_int (Bytes.get_int64_le b 0), Int64.to_int (Bytes.get_int64_le b 8)) :: acc)
  in
  go 0 []

let sys_readv proc args =
  match iovec_list proc (int_arg args 1) (int_arg args 2) with
  | Error e -> err e
  | Ok iovs ->
    let total = ref 0 in
    let rec go = function
      | [] -> ok !total
      | (base, len) :: rest -> (
        match sys_read proc [| args.(0); Int64.of_int base; Int64.of_int len |] with
        | Ok n when Int64.to_int n = len ->
          total := !total + Int64.to_int n;
          go rest
        | Ok n ->
          total := !total + Int64.to_int n;
          ok !total
        | Error e -> if !total > 0 then ok !total else err e)
    in
    go iovs

let sys_writev proc args =
  match iovec_list proc (int_arg args 1) (int_arg args 2) with
  | Error e -> err e
  | Ok iovs ->
    let total = ref 0 in
    let rec go = function
      | [] -> ok !total
      | (base, len) :: rest -> (
        match sys_write proc [| args.(0); Int64.of_int base; Int64.of_int len |] with
        | Ok n ->
          total := !total + Int64.to_int n;
          go rest
        | Error e -> if !total > 0 then ok !total else err e)
    in
    go iovs

let do_open proc path flags mode =
  let cwd = Process.cwd proc in
  let open_inode inode =
    if flags land File.o_trunc <> 0 && inode.Vfs.kind = Vfs.Reg then
      ignore (inode.Vfs.ops.Vfs.truncate inode 0);
    let desc =
      if inode.Vfs.kind = Vfs.Fifo then begin
        (* Read or write end, by access mode (low 2 bits). *)
        let p = fifo_pipe inode in
        if flags land 3 = 0 then File.Pipe_read p else File.Pipe_write p
      end
      else File.Inode_file inode
    in
    let f = File.make desc ~flags in
    Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.open_misc;
    ok (File.Table.install (Process.fdt proc) f)
  in
  match Vfs.resolve ~cwd path with
  | Ok { Vfs.inode; _ } ->
    if flags land File.o_excl <> 0 && flags land File.o_creat <> 0 then err Errno.eexist
    else if flags land File.o_directory <> 0 && inode.Vfs.kind <> Vfs.Dir then
      err Errno.enotdir
    else open_inode inode
  | Error e when e = Errno.enoent && flags land File.o_creat <> 0 -> (
    match Vfs.resolve_parent ~cwd path with
    | Error e -> err e
    | Ok (parent, leaf) -> (
      match
        parent.Vfs.inode.Vfs.ops.Vfs.create parent.Vfs.inode leaf Vfs.Reg
          ~mode:(mode land lnot (Process.umask proc))
      with
      | Ok inode -> open_inode inode
      | Error e -> err e))
  | Error e -> err e

let sys_open proc args =
  match read_str proc (int_arg args 0) with
  | Error e -> err e
  | Ok path -> do_open proc path (int_arg args 1) (int_arg args 2)

let sys_openat proc args =
  (* Only AT_FDCWD-style resolution: dirfd is ignored for absolute and
     cwd-relative paths, which covers our workloads. *)
  match read_str proc (int_arg args 1) with
  | Error e -> err e
  | Ok path -> do_open proc path (int_arg args 2) (int_arg args 3)

let sys_close proc args = lift (Result.map (fun () -> 0) (File.Table.close (Process.fdt proc) (int_arg args 0)))

let sys_lseek proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match f.File.desc with
    | File.Inode_file inode ->
      let off = int_arg args 1 in
      let newpos =
        match int_arg args 2 with
        | 0 -> off (* SEEK_SET *)
        | 1 -> f.File.pos + off
        | 2 -> inode.Vfs.size + off
        | _ -> -1
      in
      if newpos < 0 then err Errno.einval
      else begin
        f.File.pos <- newpos;
        ok newpos
      end
    | _ -> err Errno.espipe)

let stat_of_inode (inode : Vfs.inode) =
  {
    Abi.ino = inode.Vfs.ino;
    size = inode.Vfs.size;
    mode = inode.Vfs.mode;
    nlink = inode.Vfs.nlink;
    kind = Abi.kind_code inode.Vfs.kind;
    mtime_ns = inode.Vfs.mtime_ns;
  }

let write_stat proc vaddr inode =
  Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.stat_fill;
  match user_write proc ~vaddr (Abi.encode_stat (stat_of_inode inode)) with
  | Ok () -> ok 0
  | Error e -> err e

let sys_stat proc args =
  match read_str proc (int_arg args 0) with
  | Error e -> err e
  | Ok path -> (
    match Vfs.resolve ~cwd:(Process.cwd proc) path with
    | Ok { Vfs.inode; _ } -> write_stat proc (int_arg args 1) inode
    | Error e -> err e)

let sys_fstat proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match f.File.desc with
    | File.Inode_file inode -> write_stat proc (int_arg args 1) inode
    | _ ->
      (* Sockets and pipes: synthesize a minimal stat. *)
      let fake =
        { Abi.ino = 0; size = 0; mode = 0o600; nlink = 1; kind = 12; mtime_ns = 0L }
      in
      (match user_write proc ~vaddr:(int_arg args 1) (Abi.encode_stat fake) with
      | Ok () -> ok 0
      | Error e -> err e))

let sys_newfstatat proc args =
  match read_str proc (int_arg args 1) with
  | Error e -> err e
  | Ok path -> (
    match Vfs.resolve ~cwd:(Process.cwd proc) path with
    | Ok { Vfs.inode; _ } -> write_stat proc (int_arg args 2) inode
    | Error e -> err e)

let sys_access proc args =
  match read_str proc (int_arg args 0) with
  | Error e -> err e
  | Ok path -> (
    match Vfs.resolve ~cwd:(Process.cwd proc) path with
    | Ok _ -> ok 0
    | Error e -> err e)

let sys_pipe2 proc args =
  let p = Pipe.create () in
  let fdt = Process.fdt proc in
  let rfd = File.Table.install fdt (File.make (File.Pipe_read p) ~flags:0) in
  let wfd = File.Table.install fdt (File.make (File.Pipe_write p) ~flags:1) in
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (Int32.of_int rfd);
  Bytes.set_int32_le b 4 (Int32.of_int wfd);
  match user_write proc ~vaddr:(int_arg args 0) b with
  | Ok () -> ok 0
  | Error e -> err e

let sys_dup proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f ->
    File.get f;
    ok (File.Table.install (Process.fdt proc) f)

let sys_dup2 proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f ->
    File.get f;
    File.Table.install_at (Process.fdt proc) (int_arg args 1) f;
    ok (int_arg args 1)

let sys_fcntl proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match int_arg args 1 with
    | 0 (* F_DUPFD *) ->
      File.get f;
      ok (File.Table.install (Process.fdt proc) f)
    | 3 (* F_GETFL *) -> ok f.File.flags
    | 4 (* F_SETFL *) ->
      f.File.flags <- int_arg args 2;
      ok 0
    | _ -> ok 0)

let sys_mmap proc args =
  (* Anonymous private mappings only (what the workloads use). *)
  lift (Mm.do_mmap (Process.mm proc) ~len:(int_arg args 1))

let sys_munmap proc args =
  match Mm.do_munmap (Process.mm proc) ~addr:(int_arg args 0) ~len:(int_arg args 1) with
  | Ok () -> ok 0
  | Error e -> err e

let sys_mprotect proc args =
  let writable = int_arg args 2 land 2 <> 0 in
  match Mm.do_mprotect (Process.mm proc) ~addr:(int_arg args 0) ~len:(int_arg args 1) ~writable with
  | Ok () -> ok 0
  | Error e -> err e

let sys_brk proc args = ok (Mm.do_brk (Process.mm proc) (int_arg args 0))

let sys_nanosleep proc args =
  match user_read proc ~vaddr:(int_arg args 0) ~len:16 with
  | Error e -> err e
  | Ok b ->
    let sec, nsec = Abi.decode_timespec b in
    let us = (Int64.to_float sec *. 1e6) +. (Int64.to_float nsec /. 1e3) in
    Ostd.Task.sleep_us us;
    ok 0

let sys_getdents proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match f.File.desc with
    | File.Inode_file inode when inode.Vfs.kind = Vfs.Dir ->
      let all = Abi.encode_dirents (inode.Vfs.ops.Vfs.readdir inode) in
      let cap = int_arg args 2 in
      let remaining = Bytes.length all - f.File.pos in
      if remaining <= 0 then ok 0
      else begin
        let n = min cap remaining in
        match user_write proc ~vaddr:(int_arg args 1) (Bytes.sub all f.File.pos n) with
        | Ok () ->
          f.File.pos <- f.File.pos + n;
          ok n
        | Error e -> err e
      end
    | File.Inode_file _ -> err Errno.enotdir
    | _ -> err Errno.enotdir)

let sys_getcwd proc args =
  let path = (Process.cwd proc).Vfs.path ^ "\000" in
  let cap = int_arg args 1 in
  if String.length path > cap then err Errno.einval
  else
    match user_write proc ~vaddr:(int_arg args 0) (Bytes.of_string path) with
    | Ok () -> ok (String.length path)
    | Error e -> err e

let sys_chdir proc args =
  match read_str proc (int_arg args 0) with
  | Error e -> err e
  | Ok path -> (
    match Vfs.resolve ~cwd:(Process.cwd proc) path with
    | Ok r when r.Vfs.inode.Vfs.kind = Vfs.Dir ->
      Process.set_cwd proc r;
      ok 0
    | Ok _ -> err Errno.enotdir
    | Error e -> err e)

let with_parent proc args_path k =
  match read_str proc args_path with
  | Error e -> err e
  | Ok path -> (
    match Vfs.resolve_parent ~cwd:(Process.cwd proc) path with
    | Error e -> err e
    | Ok (parent, leaf) -> k parent leaf)

let sys_mkdir proc args =
  with_parent proc (int_arg args 0) (fun parent leaf ->
      match
        parent.Vfs.inode.Vfs.ops.Vfs.create parent.Vfs.inode leaf Vfs.Dir
          ~mode:(int_arg args 1 land lnot (Process.umask proc))
      with
      | Ok _ -> ok 0
      | Error e -> err e)

let sys_unlink proc args =
  with_parent proc (int_arg args 0) (fun parent leaf ->
      match parent.Vfs.inode.Vfs.ops.Vfs.unlink parent.Vfs.inode leaf with
      | Ok () -> ok 0
      | Error e -> err e)

let sys_rmdir = sys_unlink

let sys_rename proc args =
  with_parent proc (int_arg args 0) (fun sparent sleaf ->
      with_parent proc (int_arg args 1) (fun dparent dleaf ->
          match
            sparent.Vfs.inode.Vfs.ops.Vfs.rename sparent.Vfs.inode sleaf dparent.Vfs.inode
              dleaf
          with
          | Ok () -> ok 0
          | Error e -> err e))

let sys_link proc args =
  match read_str proc (int_arg args 0) with
  | Error e -> err e
  | Ok oldpath -> (
    match Vfs.resolve ~cwd:(Process.cwd proc) oldpath with
    | Error e -> err e
    | Ok target ->
      with_parent proc (int_arg args 1) (fun parent leaf ->
          match parent.Vfs.inode.Vfs.ops.Vfs.link parent.Vfs.inode leaf target.Vfs.inode with
          | Ok () -> ok 0
          | Error e -> err e))

let sys_symlink proc args =
  match read_str proc (int_arg args 0) with
  | Error e -> err e
  | Ok target ->
    with_parent proc (int_arg args 1) (fun parent leaf ->
        match parent.Vfs.inode.Vfs.ops.Vfs.create parent.Vfs.inode leaf Vfs.Lnk ~mode:0o777 with
        | Error e -> err e
        | Ok inode -> (
          match inode.Vfs.ops.Vfs.set_symlink inode target with
          | Ok () -> ok 0
          | Error e -> err e))

let sys_readlink proc args =
  (* resolve() follows links, so inspect the parent and leaf directly. *)
  with_parent proc (int_arg args 0) (fun parent leaf ->
      match parent.Vfs.inode.Vfs.ops.Vfs.lookup parent.Vfs.inode leaf with
      | None -> err Errno.enoent
      | Some inode -> (
        match inode.Vfs.ops.Vfs.symlink_target inode with
        | None -> err Errno.einval
        | Some target ->
          let n = min (String.length target) (int_arg args 2) in
          (match user_write proc ~vaddr:(int_arg args 1) (Bytes.of_string (String.sub target 0 n)) with
          | Ok () -> ok n
          | Error e -> err e)))

let sys_truncate proc args =
  match read_str proc (int_arg args 0) with
  | Error e -> err e
  | Ok path -> (
    match Vfs.resolve ~cwd:(Process.cwd proc) path with
    | Error e -> err e
    | Ok { Vfs.inode; _ } -> (
      match inode.Vfs.ops.Vfs.truncate inode (int_arg args 1) with
      | Ok () -> ok 0
      | Error e -> err e))

let sys_ftruncate proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match f.File.desc with
    | File.Inode_file inode -> (
      match inode.Vfs.ops.Vfs.truncate inode (int_arg args 1) with
      | Ok () -> ok 0
      | Error e -> err e)
    | _ -> err Errno.einval)

let sys_fsync proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match f.File.desc with
    | File.Inode_file inode -> (
      match inode.Vfs.ops.Vfs.fsync inode with
      | Ok () -> (
        (* errseq_t: a writeback error since this file's last sample is
           this caller's to see, even if some sync(2) consumed the
           legacy sticky error first. The sample advances so the error
           reports once per file. *)
        match Block.wb_check ~since:f.File.wb_sample with
        | Ok () -> ok 0
        | Error (seq, code) ->
          f.File.wb_sample <- seq;
          err code)
      | Error e -> err e)
    | _ -> err Errno.einval)

let sys_chmod proc args =
  match read_str proc (int_arg args 0) with
  | Error e -> err e
  | Ok path -> (
    match Vfs.resolve ~cwd:(Process.cwd proc) path with
    | Error e -> err e
    | Ok { Vfs.inode; _ } ->
      inode.Vfs.mode <- int_arg args 1 land 0o7777;
      ok 0)

let sys_umask proc args =
  let old = Process.umask proc in
  Process.set_umask proc (int_arg args 0 land 0o777);
  ok old

(* Why the loop stopped: end-of-file is a normal exit, not an errno
   smuggled through the error channel. *)
type sendfile_stop = Sf_eof | Sf_err of int

let sys_sendfile proc args =
  match (file_of proc args.(0), file_of proc args.(1)) with
  | Error e, _ | _, Error e -> err e
  | Ok out_f, Ok in_f -> (
    match in_f.File.desc with
    | File.Inode_file inode ->
      let count = int_arg args 3 in
      let chunk_size = 64 * 1024 in
      (* Zero-copy sendfile-to-wire: when the source is page-cache
         backed and the sink is TCP, map the cache frames straight into
         the transmit path — the frames stay pinned until the NIC's
         completion reaps them, and the CPU never touches the payload.
         Anything else falls back to the classic bounce-buffer loop. *)
      let zero_copy =
        (Sim.Profile.get ()).Sim.Profile.sendfile_zero_copy
        && File.tcp_conn_of out_f <> None
        && Ramfs.file_cache inode <> None
      in
      let sent = ref 0 in
      let stop = ref None in
      (* One bounce buffer reused across the whole transfer. *)
      let buf = if zero_copy then Bytes.empty else Bytes.create (min chunk_size count) in
      while !sent < count && !stop = None do
        let want = min chunk_size (count - !sent) in
        if zero_copy then begin
          match Ramfs.file_view inode ~pos:in_f.File.pos ~len:want with
          | None -> stop := Some Sf_eof
          | Some (data, n, pins) -> (
            let conn =
              match File.tcp_conn_of out_f with Some c -> c | None -> assert false
            in
            match Tcp.send ~pins conn ~buf:data ~pos:0 ~len:n with
            | Ok w ->
              in_f.File.pos <- in_f.File.pos + w;
              sent := !sent + w
            | Error e -> stop := Some (Sf_err e))
        end
        else
          match inode.Vfs.ops.Vfs.read inode ~pos:in_f.File.pos ~buf ~boff:0 ~len:want with
          | Error e -> stop := Some (Sf_err e)
          | Ok 0 -> stop := Some Sf_eof
          | Ok n -> (
            (* The file-system read above was the first copy. *)
            Sim.Stats.add "net.bytes_copied" n;
            (* The paper: Asterinas' sendfile is less optimised — it
               takes an extra copy through an intermediate buffer, and
               the smoltcp-style stack copies once more into its own
               transmit buffer. Linux's zero-copy path hands page-cache
               pages to the NIC directly. *)
            if not (Sim.Profile.get ()).Sim.Profile.sendfile_zero_copy then begin
              Sim.Cost.charge_memcpy n;
              Sim.Stats.add "net.bytes_copied" n
            end;
            match do_write_desc ~len:n proc out_f buf with
            | Ok w ->
              in_f.File.pos <- in_f.File.pos + w;
              sent := !sent + w
            | Error e -> stop := Some (Sf_err e))
      done;
      (match !stop with
      | None | Some Sf_eof -> ok !sent
      | Some (Sf_err e) -> if !sent > 0 then ok !sent else err e)
    | _ -> err Errno.einval)

(* --- Sockets --- *)

let sys_socket proc args =
  let domain = int_arg args 0 and typ = int_arg args 1 land 0xf in
  let kind =
    if domain = Abi.af_inet && typ = Abi.sock_stream then Some File.Inet_stream
    else if domain = Abi.af_inet && typ = Abi.sock_dgram then Some File.Inet_dgram
    else if domain = Abi.af_unix && typ = Abi.sock_stream then Some File.Unix_stream
    else None
  in
  match kind with
  | None -> err Errno.eafnosupport
  | Some kind ->
    let sock = { File.kind; st = File.S_unbound; bport = None; upath = None } in
    ok (File.Table.install (Process.fdt proc) (File.make (File.Socket sock) ~flags:0))

let sock_of f =
  match f.File.desc with File.Socket s -> Ok s | _ -> Error Errno.enotsock

let read_sockaddr proc vaddr len =
  if vaddr = 0 then Ok None
  else
    match user_read proc ~vaddr ~len:(max 8 (min len 128)) with
    | Error e -> Error e
    | Ok b -> Ok (Abi.decode_sockaddr b)

let sys_bind proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match sock_of f with
    | Error e -> err e
    | Ok s -> (
      match read_sockaddr proc (int_arg args 1) (int_arg args 2) with
      | Error e -> err e
      | Ok (Some (Abi.Addr_in { port; _ })) -> (
        match s.File.kind with
        | File.Inet_stream ->
          s.File.bport <- Some port;
          ok 0
        | File.Inet_dgram -> (
          let _, _, udp = the_net () in
          ignore udp;
          let u =
            match s.File.st with
            | File.S_udp u -> u
            | _ ->
              let _, _, eng = the_net () in
              let u = Udp.socket eng in
              s.File.st <- File.S_udp u;
              u
          in
          match Udp.bind u ~port with Ok () -> ok 0 | Error e -> err e)
        | File.Unix_stream -> err Errno.einval)
      | Ok (Some (Abi.Addr_un path)) ->
        s.File.upath <- Some path;
        ok 0
      | Ok None -> err Errno.efault))

let sys_listen proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match sock_of f with
    | Error e -> err e
    | Ok s -> (
      match (s.File.kind, s.File.bport, s.File.upath) with
      | File.Inet_stream, Some port, _ -> (
        let _, tcp, _ = the_net () in
        let backlog =
          let b = int_arg args 1 in
          if b <= 0 then 1 else min b 4096
        in
        match Tcp.listen ~backlog tcp ~port with
        | Ok l ->
          s.File.st <- File.S_tcp_listener l;
          ok 0
        | Error e -> err e)
      | File.Unix_stream, _, Some path -> (
        match Unix_sock.listen ~path with
        | Ok l ->
          s.File.st <- File.S_unix_listener l;
          ok 0
        | Error e -> err e)
      | _ -> err Errno.einval))

(* accept4(2)'s SOCK_NONBLOCK shares O_NONBLOCK's bit value on Linux. *)
let sock_nonblock = File.o_nonblock

let do_accept proc f s ~addr_ptr ~sock_flags =
  let nflags = if sock_flags land sock_nonblock <> 0 then File.o_nonblock else 0 in
  (* A listener marked O_NONBLOCK never sleeps in accept: EAGAIN when
     the queue is empty — the epoll accept-drain loop's exit signal. *)
  let listener_nb = f.File.flags land File.o_nonblock <> 0 in
  match s.File.st with
  | File.S_tcp_listener l -> (
    Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.open_misc;
    let conn_opt = if listener_nb then Tcp.accept_opt l else Some (Tcp.accept l) in
    match conn_opt with
    | None -> err Errno.eagain
    | Some conn ->
      let ns =
        { File.kind = File.Inet_stream; st = File.S_tcp_conn conn; bport = None; upath = None }
      in
      let fd = File.Table.install (Process.fdt proc) (File.make (File.Socket ns) ~flags:nflags) in
      if addr_ptr <> 0 then begin
        let ip, port = Tcp.peer_of conn in
        ignore (user_write proc ~vaddr:addr_ptr (Abi.encode_sockaddr_in ~port ~ip))
      end;
      ok fd)
  | File.S_unix_listener l -> (
    let ep_opt = if listener_nb then Unix_sock.accept_opt l else Some (Unix_sock.accept l) in
    match ep_opt with
    | None -> err Errno.eagain
    | Some ep ->
      let ns =
        { File.kind = File.Unix_stream; st = File.S_unix_conn ep; bport = None; upath = None }
      in
      ok (File.Table.install (Process.fdt proc) (File.make (File.Socket ns) ~flags:nflags)))
  | _ -> err Errno.einval

let sys_accept proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match sock_of f with
    | Error e -> err e
    | Ok s -> do_accept proc f s ~addr_ptr:(int_arg args 1) ~sock_flags:0)

let sys_accept4 proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match sock_of f with
    | Error e -> err e
    | Ok s -> do_accept proc f s ~addr_ptr:(int_arg args 1) ~sock_flags:(int_arg args 3))

let sys_connect proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match sock_of f with
    | Error e -> err e
    | Ok s -> (
      match read_sockaddr proc (int_arg args 1) (int_arg args 2) with
      | Error e -> err e
      | Ok (Some (Abi.Addr_in { port; ip })) -> (
        match s.File.kind with
        | File.Inet_stream -> (
          let _, tcp, _ = the_net () in
          match Tcp.connect tcp ~dst_ip:ip ~dst_port:port with
          | Ok conn ->
            s.File.st <- File.S_tcp_conn conn;
            ok 0
          | Error e -> err e)
        | File.Inet_dgram ->
          (* Connected UDP: remember the peer. *)
          s.File.bport <- Some port;
          ok 0
        | File.Unix_stream -> err Errno.einval)
      | Ok (Some (Abi.Addr_un path)) -> (
        match Unix_sock.connect ~path with
        | Ok ep ->
          s.File.st <- File.S_unix_conn ep;
          ok 0
        | Error e -> err e)
      | Ok None -> err Errno.efault))

let sys_sendto proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match sock_of f with
    | Error e -> err e
    | Ok s -> (
      match s.File.st with
      | File.S_udp _ | File.S_unbound when s.File.kind = File.Inet_dgram -> (
        match user_read proc ~vaddr:(int_arg args 1) ~len:(int_arg args 2) with
        | Error e -> err e
        | Ok data -> (
          let u =
            match s.File.st with
            | File.S_udp u -> u
            | _ ->
              let _, _, eng = the_net () in
              let u = Udp.socket eng in
              s.File.st <- File.S_udp u;
              u
          in
          match read_sockaddr proc (int_arg args 4) (int_arg args 5) with
          | Error e -> err e
          | Ok (Some (Abi.Addr_in { port; ip })) ->
            lift (Udp.sendto u ~dst_ip:ip ~dst_port:port ~buf:data ~pos:0 ~len:(Bytes.length data))
          | Ok _ -> err Errno.einval))
      | _ -> sys_write proc [| args.(0); args.(1); args.(2) |]))

let sys_recvfrom proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match sock_of f with
    | Error e -> err e
    | Ok s -> (
      match s.File.st with
      | File.S_udp u -> (
        let len = int_arg args 2 in
        let buf = Bytes.create len in
        match Udp.recvfrom u ~buf ~pos:0 ~len with
        | Error e -> err e
        | Ok (n, src_ip, src_port) -> (
          let addr_ptr = int_arg args 4 in
          if addr_ptr <> 0 then
            ignore
              (user_write proc ~vaddr:addr_ptr
                 (Abi.encode_sockaddr_in ~port:src_port ~ip:src_ip));
          match user_write proc ~vaddr:(int_arg args 1) (Bytes.sub buf 0 n) with
          | Ok () -> ok n
          | Error e -> err e))
      | _ -> sys_read proc [| args.(0); args.(1); args.(2) |]))

let sys_socketpair proc args =
  if int_arg args 0 <> Abi.af_unix then err Errno.eafnosupport
  else begin
    let a, b = Unix_sock.socketpair () in
    let mk ep = { File.kind = File.Unix_stream; st = File.S_unix_conn ep; bport = None; upath = None } in
    let fdt = Process.fdt proc in
    let fa = File.Table.install fdt (File.make (File.Socket (mk a)) ~flags:0) in
    let fb = File.Table.install fdt (File.make (File.Socket (mk b)) ~flags:0) in
    let out = Bytes.create 8 in
    Bytes.set_int32_le out 0 (Int32.of_int fa);
    Bytes.set_int32_le out 4 (Int32.of_int fb);
    match user_write proc ~vaddr:(int_arg args 3) out with
    | Ok () -> ok 0
    | Error e -> err e
  end

let sys_getsockname proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match sock_of f with
    | Error e -> err e
    | Ok s ->
      let port = match s.File.bport with Some p -> p | None -> 0 in
      (match user_write proc ~vaddr:(int_arg args 1) (Abi.encode_sockaddr_in ~port ~ip:0) with
      | Ok () -> ok 0
      | Error e -> err e))

let sys_shutdown proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match sock_of f with
    | Error e -> err e
    | Ok s -> (
      match s.File.st with
      | File.S_tcp_conn c ->
        Tcp.close c;
        ok 0
      | File.S_unix_conn ep ->
        Unix_sock.close ep;
        ok 0
      | _ -> err Errno.enotconn))

(* --- Process management --- *)

let sys_kill _proc args =
  let pid = int_arg args 0 and signal = int_arg args 1 in
  match Process.by_pid pid with
  | None -> err Errno.esrch
  | Some target ->
    if signal = 0 then ok 0
    else begin
      Process.deliver_signal target signal;
      ok 0
    end

let sys_rt_sigaction proc args =
  let signal = int_arg args 0 and act_ptr = int_arg args 1 and old_ptr = int_arg args 2 in
  let st = Process.signals proc in
  if old_ptr <> 0 then begin
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0
      (match Signal.action st ~signal with
      | Signal.Default -> 0L
      | Signal.Ignore -> 1L
      | Signal.Handled -> 2L);
    ignore (user_write proc ~vaddr:old_ptr b)
  end;
  if act_ptr = 0 then ok 0
  else
    match user_read proc ~vaddr:act_ptr ~len:8 with
    | Error e -> err e
    | Ok b ->
      let d =
        match Bytes.get_int64_le b 0 with
        | 0L -> Signal.Default
        | 1L -> Signal.Ignore
        | _ -> Signal.Handled
      in
      Signal.set_action st ~signal d;
      ok 0

let sys_rt_sigprocmask proc args =
  let how = int_arg args 0 and set_ptr = int_arg args 1 and old_ptr = int_arg args 2 in
  let st = Process.signals proc in
  if old_ptr <> 0 then begin
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int (Signal.mask st));
    ignore (user_write proc ~vaddr:old_ptr b)
  end;
  if set_ptr = 0 then ok 0
  else
    match user_read proc ~vaddr:set_ptr ~len:8 with
    | Error e -> err e
    | Ok b ->
      let m = Int64.to_int (Bytes.get_int64_le b 0) in
      (match how with
      | 0 -> Signal.block st ~mask:m
      | 1 -> Signal.unblock st ~mask:m
      | 2 ->
        Signal.unblock st ~mask:(Signal.mask st);
        Signal.block st ~mask:m
      | _ -> ());
      ok 0

let sys_rt_sigpending proc args =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int (Signal.pending (Process.signals proc)));
  match user_write proc ~vaddr:(int_arg args 0) b with
  | Ok () -> ok 0
  | Error e -> err e

let sys_mknod proc args =
  with_parent proc (int_arg args 0) (fun parent leaf ->
      let mode = int_arg args 1 in
      let kind = if mode land 0o170000 = 0o010000 then Vfs.Fifo else Vfs.Reg in
      match parent.Vfs.inode.Vfs.ops.Vfs.create parent.Vfs.inode leaf kind ~mode:(mode land 0o777) with
      | Ok _ -> ok 0
      | Error e -> err e)

let sys_lstat proc args =
  (* No final-symlink follow: inspect the parent's entry directly. *)
  with_parent proc (int_arg args 0) (fun parent leaf ->
      match parent.Vfs.inode.Vfs.ops.Vfs.lookup parent.Vfs.inode leaf with
      | Some inode -> write_stat proc (int_arg args 1) inode
      | None -> err Errno.enoent)

let sys_statfs proc args =
  match read_str proc (int_arg args 0) with
  | Error e -> err e
  | Ok path -> (
    match Vfs.resolve ~cwd:(Process.cwd proc) path with
    | Error e -> err e
    | Ok { Vfs.inode; _ } ->
      (* struct statfs (simplified, 32 bytes): type tag, block size,
         total blocks, free blocks. *)
      let b = Bytes.create 32 in
      let is_ext2 = inode.Vfs.fsname = "ext2" in
      Bytes.set_int64_le b 0 (if is_ext2 then 0xEF53L else 0x858458F6L);
      Bytes.set_int64_le b 8 4096L;
      Bytes.set_int64_le b 16
        (Int64.of_int (if is_ext2 then Block.capacity_sectors () / Block.sectors_per_block else 0));
      Bytes.set_int64_le b 24 (Int64.of_int (if is_ext2 then Ext2.free_blocks () else 0));
      (match user_write proc ~vaddr:(int_arg args 1) b with
      | Ok () -> ok 0
      | Error e -> err e))

let sys_fchdir proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok f -> (
    match f.File.desc with
    | File.Inode_file inode when inode.Vfs.kind = Vfs.Dir ->
      (* Recover an absolute path is not tracked per-fd; keep the inode
         with the cwd's old path as best effort (fchdir after open "/x"). *)
      Process.set_cwd proc { Vfs.inode; path = (Process.cwd proc).Vfs.path };
      ok 0
    | File.Inode_file _ -> err Errno.enotdir
    | _ -> err Errno.enotdir)

let sys_sync _proc _args =
  match Ext2.sync_fs () with Ok () -> ok 0 | Error e -> err e

let sys_fork proc args =
  match Process.resolve_child args.(0) with
  | None -> err Errno.einval
  | Some child -> ok (Process.fork_current proc ~child)

let sys_clone proc args =
  match Process.resolve_child args.(0) with
  | None -> err Errno.einval
  | Some body -> ok (Process.spawn_thread proc ~body)

let sys_wait4 proc args =
  match Process.wait_child proc with
  | Error e -> err e
  | Ok (pid, code) -> (
    let status_ptr = int_arg args 1 in
    if status_ptr = 0 then ok pid
    else begin
      let b = Bytes.create 4 in
      Bytes.set_int32_le b 0 (Int32.of_int ((code land 0xff) lsl 8));
      match user_write proc ~vaddr:status_ptr b with
      | Ok () -> ok pid
      | Error e -> err e
    end)

let sys_uname proc args =
  let s = "Asterinas-OCaml\000framekernel\0006.0-repro\000x86_64-sim\000" in
  match user_write proc ~vaddr:(int_arg args 0) (Bytes.of_string s) with
  | Ok () -> ok 0
  | Error e -> err e

(* --- CPU-time exports from task accounting (kprof) --- *)

let cycles_to_ns c = Int64.div (Int64.mul c 1000L) (Int64.of_int Sim.Clock.cycles_per_us)

let cycles_to_usec c = Int64.div c (Int64.of_int Sim.Clock.cycles_per_us)

(* CLK_TCK = 100: one clock tick is 10ms of virtual time. *)
let cycles_per_tick = Int64.of_int (Sim.Clock.cycles_per_us * 10_000)

let cycles_to_ticks c = Int64.div c cycles_per_tick

let proc_cpu_times proc =
  match Process.task proc with Some t -> Ostd.Task.cpu_times t | None -> (0L, 0L)

let sys_clock_gettime proc args =
  let clk = int_arg args 0 in
  let ns =
    if clk = 1 then Ktime.monotonic_ns ()
    else if clk = 2 || clk = 3 then begin
      (* CLOCK_PROCESS_CPUTIME_ID / CLOCK_THREAD_CPUTIME_ID: one task
         per process here, so both read the task's utime + stime. *)
      let ut, st = proc_cpu_times proc in
      cycles_to_ns (Int64.add ut st)
    end
    else Ktime.realtime_ns ()
  in
  let sec = Int64.div ns 1_000_000_000L and nsec = Int64.rem ns 1_000_000_000L in
  match user_write proc ~vaddr:(int_arg args 1) (Abi.encode_timespec ~sec ~nsec) with
  | Ok () -> ok 0
  | Error e -> err e

let sys_getrusage proc args =
  (* struct rusage: two timevals then 14 longs (144 bytes). The fields
     the simulator accounts are real: ru_utime, ru_stime, ru_nvcsw,
     ru_nivcsw. who = RUSAGE_CHILDREN (-1) reports zeros — child times
     are not folded back into the parent. *)
  let who = Int64.to_int args.(0) in
  let b = Bytes.make 144 '\000' in
  let put_timeval off cycles =
    let usec = cycles_to_usec cycles in
    Bytes.set_int64_le b off (Int64.div usec 1_000_000L);
    Bytes.set_int64_le b (off + 8) (Int64.rem usec 1_000_000L)
  in
  if who >= 0 then begin
    let ut, st = proc_cpu_times proc in
    put_timeval 0 ut;
    put_timeval 16 st;
    match Process.task proc with
    | Some t ->
      let nv, niv = Ostd.Task.ctx_switches t in
      Bytes.set_int64_le b 128 (Int64.of_int nv);
      Bytes.set_int64_le b 136 (Int64.of_int niv)
    | None -> ()
  end;
  match user_write proc ~vaddr:(int_arg args 1) b with
  | Ok () -> ok 0
  | Error e -> err e

let sys_times proc args =
  (* struct tms: four clock_t at CLK_TCK = 100; the return value is
     ticks of uptime. A NULL buffer just returns the tick count. *)
  let uptime_ticks = cycles_to_ticks (Sim.Clock.now ()) in
  let ptr = int_arg args 0 in
  if ptr = 0 then ok64 uptime_ticks
  else begin
    let ut, st = proc_cpu_times proc in
    let b = Bytes.make 32 '\000' in
    Bytes.set_int64_le b 0 (cycles_to_ticks ut);
    Bytes.set_int64_le b 8 (cycles_to_ticks st);
    (* tms_cutime / tms_cstime stay zero: no child-time folding. *)
    match user_write proc ~vaddr:ptr b with
    | Ok () -> ok64 uptime_ticks
    | Error e -> err e
  end

let sys_gettimeofday proc args =
  let ns = Ktime.realtime_ns () in
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 (Int64.div ns 1_000_000_000L);
  Bytes.set_int64_le b 8 (Int64.div (Int64.rem ns 1_000_000_000L) 1000L);
  match user_write proc ~vaddr:(int_arg args 0) b with
  | Ok () -> ok 0
  | Error e -> err e

let sys_time proc args =
  let sec = Int64.div (Ktime.realtime_ns ()) 1_000_000_000L in
  let ptr = int_arg args 0 in
  if ptr = 0 then ok64 sec
  else begin
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 sec;
    match user_write proc ~vaddr:ptr b with
    | Ok () -> ok64 sec
    | Error e -> err e
  end

let sys_getrandom proc args =
  let len = int_arg args 1 in
  let rng = Sim.Rng.create (Sim.Clock.now ()) in
  let b = Bytes.init len (fun _ -> Char.chr (Sim.Rng.int rng 256)) in
  match user_write proc ~vaddr:(int_arg args 0) b with
  | Ok () -> ok len
  | Error e -> err e

(* --- Readiness syscalls: poll(2) + the epoll family ---

   Both sit on the Pollable seam. poll is the O(nfds) shape: every
   call resolves and levels every fd; blocking parks on the pollables'
   edge publications plus a timer-wheel deadline — no busy loop.
   epoll is the O(ready) shape: the interest list lives in the kernel
   and a wait touches only edge-queued entries. *)

let pollable_of_desc (d : File.desc) =
  match d with
  | File.Pipe_read p -> Some (Pipe.rd_pollable p)
  | File.Pipe_write p -> Some (Pipe.wr_pollable p)
  | File.Epoll e -> Some (Epoll.pollable e)
  | File.Socket s -> (
    match s.File.st with
    | File.S_tcp_conn c -> Some (Tcp.pollable c)
    | File.S_tcp_listener l -> Some (Tcp.listener_pollable l)
    | File.S_udp u -> Some (Udp.pollable u)
    | File.S_unix_conn ep -> Some (Unix_sock.pollable ep)
    | File.S_unix_listener l -> Some (Unix_sock.listener_pollable l)
    | File.S_unbound -> None)
  | File.Inode_file _ -> None

let sys_poll proc args =
  (* pollfd: int fd, short events, short revents. *)
  let base = int_arg args 0 in
  let nfds = int_arg args 1 in
  if nfds < 0 then err Errno.einval
  else begin
    (* ERR/HUP/NVAL are reported whether requested or not. *)
    let always = Pollable.pollerr lor Pollable.pollhup lor Pollable.pollnval in
    (* Parse the array and resolve every fd once (poll holds its file
       references for the call's whole duration): a closed fd is
       POLLNVAL, a negative one is ignored, a regular file is always
       readable+writable. This is the per-call O(nfds) cost epoll
       amortises away — each resolution charges an fd lookup. *)
    let entries =
      Array.init nfds (fun i ->
          match user_read proc ~vaddr:(base + (8 * i)) ~len:8 with
          | Error _ -> (-1, 0, `Static 0)
          | Ok b ->
            let fd = Int32.to_int (Bytes.get_int32_le b 0) in
            let events = Bytes.get_uint16_le b 4 in
            let src =
              if fd < 0 then `Static 0
              else
                match File.Table.lookup (Process.fdt proc) fd with
                | None -> `Static Pollable.pollnval
                | Some f -> (
                  match pollable_of_desc f.File.desc with
                  | Some p -> `Pollable p
                  | None -> (
                    match f.File.desc with
                    | File.Inode_file _ -> `Static (Pollable.pollin lor Pollable.pollout)
                    | _ -> `Static 0))
            in
            (fd, events, src))
    in
    let revents_of (_, events, src) =
      match src with
      | `Static bits -> bits land (events lor always)
      | `Pollable p -> Pollable.level p land (events lor always)
    in
    let scan () = Array.map revents_of entries in
    let count revs = Array.fold_left (fun n r -> if r <> 0 then n + 1 else n) 0 revs in
    let write_back revs =
      let b = Bytes.create 8 in
      Array.iteri
        (fun i (fd, events, _) ->
          Bytes.set_int32_le b 0 (Int32.of_int fd);
          Bytes.set_uint16_le b 4 events;
          Bytes.set_uint16_le b 6 revs.(i);
          ignore (user_write proc ~vaddr:(base + (8 * i)) b))
        entries
    in
    let timeout_ms = int_arg args 2 in
    let deadline =
      if timeout_ms < 0 then None
      else
        Some
          (Int64.add (Sim.Clock.now ())
             (Int64.of_int (Sim.Clock.us (float_of_int timeout_ms *. 1000.))))
    in
    (* Subscribe before the first scan so no edge can slip between
       "level says not ready" and "blocked" (the sim never preempts
       between the two, but the order costs nothing and reads right). *)
    let wq = Ostd.Wait_queue.create () in
    let subs =
      Array.to_list entries
      |> List.filter_map (fun (_, _, src) ->
             match src with
             | `Pollable p ->
               Some (p, Pollable.attach p (fun _ -> ignore (Ostd.Wait_queue.wake_all wq : int)))
             | `Static _ -> None)
    in
    let finish revs =
      List.iter (fun (p, w) -> Pollable.detach p w) subs;
      write_back revs;
      ok (count revs)
    in
    let rec loop () =
      let revs = scan () in
      if count revs > 0 || timeout_ms = 0 then finish revs
      else
        match deadline with
        | Some dl when Int64.compare (Sim.Clock.now ()) dl >= 0 -> finish revs
        | Some dl ->
          let me = Ostd.Task.current () in
          let wheel = Timer_wheel.the () in
          let tm = Timer_wheel.arm wheel ~deadline:dl (fun () -> Ostd.Task.wake me) in
          Ostd.Wait_queue.sleep wq;
          Timer_wheel.cancel wheel tm;
          loop ()
        | None ->
          Ostd.Wait_queue.sleep wq;
          loop ()
    in
    loop ()
  end

(* epoll_event on the wire: packed u32 events + u64 data (12 bytes),
   the x86-64 layout. *)
let epoll_event_size = 12

let sys_epoll_create1 proc _args =
  let e = Epoll.create () in
  ok (File.Table.install (Process.fdt proc) (File.make (File.Epoll e) ~flags:0))

let sys_epoll_ctl proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok epf -> (
    match epf.File.desc with
    | File.Epoll ep -> (
      let op = int_arg args 1 in
      let fd = int_arg args 2 in
      match File.Table.lookup (Process.fdt proc) fd with
      | None -> err Errno.ebadf
      | Some tf ->
        if tf == epf then err Errno.einval (* an epoll fd cannot watch itself *)
        else if op = Epoll.op_del then (
          match Epoll.ctl_del ep ~fd with Ok () -> ok 0 | Error e -> err e)
        else (
          match user_read proc ~vaddr:(int_arg args 3) ~len:epoll_event_size with
          | Error e -> err e
          | Ok b -> (
            let events = Int32.to_int (Bytes.get_int32_le b 0) land 0xffffffff in
            let data = Bytes.get_int64_le b 4 in
            let res =
              if op = Epoll.op_add then (
                match pollable_of_desc tf.File.desc with
                | None -> Error Errno.eperm (* regular files don't poll *)
                | Some p -> Epoll.ctl_add ep ~fd ~pollable:p ~events ~data)
              else if op = Epoll.op_mod then Epoll.ctl_mod ep ~fd ~events ~data
              else Error Errno.einval
            in
            match res with Ok () -> ok 0 | Error e -> err e)))
    | _ -> err Errno.einval)

let sys_epoll_wait proc args =
  match file_of proc args.(0) with
  | Error e -> err e
  | Ok epf -> (
    match epf.File.desc with
    | File.Epoll ep ->
      let maxevents = int_arg args 2 in
      if maxevents <= 0 then err Errno.einval
      else begin
        let timeout_ms = int_arg args 3 in
        let timeout_cycles =
          if timeout_ms < 0 then -1 else Sim.Clock.us (float_of_int timeout_ms *. 1000.)
        in
        let evs = Epoll.wait ep ~maxevents ~timeout_cycles in
        let n = List.length evs in
        if n = 0 then ok 0
        else begin
          let b = Bytes.create (epoll_event_size * n) in
          List.iteri
            (fun i (data, revents) ->
              Bytes.set_int32_le b (epoll_event_size * i) (Int32.of_int revents);
              Bytes.set_int64_le b ((epoll_event_size * i) + 4) data)
            evs;
          match user_write proc ~vaddr:(int_arg args 1) b with
          | Ok () -> ok n
          | Error e -> err e
        end
      end
    | _ -> err Errno.einval)

(* --- bpf(2)-lite probe surface ---

   probe_load(text, len) feeds program text to the kprobe
   parser/verifier; the program attaches on success (returning its
   load-order id) and is rejected wholesale with EINVAL otherwise (the
   reason lands in /proc/kprobe/programs). probe_read(name, buf, len,
   off) copies the program's rendered map tables out, read(2)-style. *)

let probe_text_max = 65536

let sys_probe_load proc args =
  let len = int_arg args 1 in
  if len <= 0 || len > probe_text_max then err Errno.einval
  else
    match user_read proc ~vaddr:(int_arg args 0) ~len with
    | Error e -> err e
    | Ok buf -> (
      match Kprobe.Registry.load_text (Bytes.to_string buf) with
      | Error _ ->
        (* The rejection reason is latched in Registry.last_error. *)
        Sim.Stats.incr "kprobe.rejected";
        err Errno.einval
      | Ok name ->
        Sim.Stats.incr "kprobe.loaded";
        let rec index i = function
          | [] -> -1
          | n :: tl -> if n = name then i else index (i + 1) tl
        in
        ok (index 0 (Kprobe.Registry.list ())))

let sys_probe_read proc args =
  match read_str proc (int_arg args 0) with
  | Error e -> err e
  | Ok name -> (
    match Kprobe.Registry.render_maps name with
    | None -> err Errno.enoent
    | Some text ->
      let off = int_arg args 3 in
      let len = int_arg args 2 in
      if off < 0 || len < 0 then err Errno.einval
      else if off >= String.length text then ok 0
      else begin
        let n = min len (String.length text - off) in
        match user_write proc ~vaddr:(int_arg args 1) (Bytes.of_string (String.sub text off n)) with
        | Error e -> err e
        | Ok () -> ok n
      end)

(* kspan request boundaries: span_begin(cls_ptr, name_ptr) opens a
   span on the calling task and returns its id; span_end(id) seals it.
   Both are bookkeeping-only — no virtual cycles beyond the ordinary
   syscall cost, so span-on runs stay byte-identical. *)
let sys_span_begin proc args =
  match read_str proc (int_arg args 0) with
  | Error e -> err e
  | Ok cls -> (
    match read_str proc (int_arg args 1) with
    | Error e -> err e
    | Ok name ->
      if cls = "" then err Errno.einval else ok (Sim.Span.begin_ ~cls ~name))

let sys_span_end _proc args =
  let id = int_arg args 0 in
  if id < 0 then err Errno.einval
  else begin
    Sim.Span.end_ id;
    ok 0
  end

(* --- Dispatch table --- *)

let handlers : (int, Process.t -> int64 array -> (int64, int) result) Hashtbl.t =
  Hashtbl.create 128

let reg nr h = Hashtbl.replace handlers nr h

let const_ok _ _ = ok 0

let register_all () =
  reg N.read sys_read;
  reg N.write sys_write;
  reg N.open_ sys_open;
  reg N.openat sys_openat;
  reg N.creat (fun proc args ->
      do_open proc
        (match read_str proc (int_arg args 0) with Ok p -> p | Error _ -> "")
        (File.o_creat lor File.o_trunc lor 1)
        (int_arg args 1));
  reg N.close sys_close;
  reg N.stat sys_stat;
  reg N.fstat sys_fstat;
  reg N.newfstatat sys_newfstatat;
  reg N.access sys_access;
  reg N.lseek sys_lseek;
  reg N.pread64 sys_pread;
  reg N.pwrite64 sys_pwrite;
  reg N.readv sys_readv;
  reg N.writev sys_writev;
  reg N.pipe sys_pipe2;
  reg N.pipe2 sys_pipe2;
  reg N.dup sys_dup;
  reg N.dup2 sys_dup2;
  reg N.fcntl sys_fcntl;
  reg N.mmap sys_mmap;
  reg N.munmap sys_munmap;
  reg N.mprotect sys_mprotect;
  reg N.brk sys_brk;
  reg N.nanosleep sys_nanosleep;
  reg N.clock_nanosleep sys_nanosleep;
  reg N.sched_yield (fun _ _ ->
      Ostd.Task.yield_now ();
      ok 0);
  reg N.getpid (fun proc _ -> ok (Process.pid proc));
  reg N.getppid (fun proc _ -> ok (Process.parent_pid proc));
  reg N.gettid (fun proc _ -> ok (Process.pid proc));
  reg N.getuid const_ok;
  reg N.getgid const_ok;
  reg N.geteuid const_ok;
  reg N.getegid const_ok;
  reg N.setsid (fun proc _ -> ok (Process.pid proc));
  reg N.umask sys_umask;
  reg N.getdents sys_getdents;
  reg N.getdents64 sys_getdents;
  reg N.getcwd sys_getcwd;
  reg N.chdir sys_chdir;
  reg N.mkdir sys_mkdir;
  reg N.mkdirat (fun proc args -> sys_mkdir proc [| args.(1); args.(2) |]);
  reg N.rmdir sys_rmdir;
  reg N.unlink sys_unlink;
  reg N.unlinkat (fun proc args -> sys_unlink proc [| args.(1) |]);
  reg N.rename sys_rename;
  reg N.renameat (fun proc args -> sys_rename proc [| args.(1); args.(3) |]);
  reg N.link sys_link;
  reg N.symlink sys_symlink;
  reg N.readlink sys_readlink;
  reg N.truncate sys_truncate;
  reg N.ftruncate sys_ftruncate;
  reg N.fsync sys_fsync;
  reg N.fdatasync sys_fsync;
  reg N.flock const_ok;
  reg N.chmod sys_chmod;
  reg N.chown const_ok;
  reg N.ioctl const_ok;
  reg N.sendfile sys_sendfile;
  reg N.socket sys_socket;
  reg N.bind sys_bind;
  reg N.listen sys_listen;
  reg N.accept sys_accept;
  reg N.connect sys_connect;
  reg N.sendto sys_sendto;
  reg N.recvfrom sys_recvfrom;
  reg N.socketpair sys_socketpair;
  reg N.getsockname sys_getsockname;
  reg N.setsockopt (fun proc args ->
      (match file_of proc args.(0) with
      | Ok { File.desc = File.Socket { File.st = File.S_tcp_conn conn; _ }; _ }
        when int_arg args 1 = 6 && int_arg args 2 = 1 ->
        Tcp.set_nodelay conn
      | _ -> ());
      ok 0);
  reg N.getsockopt const_ok;
  reg N.shutdown sys_shutdown;
  reg N.fork sys_fork;
  reg 56 sys_clone;
  reg N.execve (fun proc args ->
      match read_str proc (int_arg args 0) with
      | Error e -> err e
      | Ok path -> (
        match read_str_array proc (int_arg args 1) with
        | Error e -> err e
        | Ok argv -> (
          match Process.do_exec proc path argv with
          | Ok () -> Ok Int64.min_int (* marker, see dispatch *)
          | Error e -> err e)));
  reg N.kill sys_kill;
  reg N.rt_sigaction sys_rt_sigaction;
  reg N.rt_sigprocmask sys_rt_sigprocmask;
  reg N.rt_sigpending sys_rt_sigpending;
  reg N.mknod sys_mknod;
  reg N.lstat sys_lstat;
  reg N.statfs sys_statfs;
  reg N.fchdir sys_fchdir;
  reg N.sync sys_sync;
  reg N.dup3 sys_dup2;
  reg N.exit (fun proc _args -> Process.do_exit proc (int_arg _args 0));
  reg N.exit_group (fun proc _args -> Process.do_exit proc (int_arg _args 0));
  reg N.wait4 sys_wait4;
  reg N.uname sys_uname;
  reg N.gettimeofday sys_gettimeofday;
  reg N.clock_gettime sys_clock_gettime;
  reg N.time sys_time;
  reg N.getrandom sys_getrandom;
  reg N.poll sys_poll;
  reg N.epoll_create1 sys_epoll_create1;
  reg N.epoll_ctl sys_epoll_ctl;
  reg N.epoll_wait sys_epoll_wait;
  reg N.accept4 sys_accept4;
  reg N.getrlimit const_ok;
  reg N.getrusage sys_getrusage;
  reg N.times sys_times;
  reg N.probe_load sys_probe_load;
  reg N.probe_read sys_probe_read;
  reg N.span_begin sys_span_begin;
  reg N.span_end sys_span_end

let implemented_count () = Hashtbl.length handlers

let implemented_numbers () =
  Hashtbl.fold (fun nr _ acc -> nr :: acc) handlers [] |> List.sort compare

let is_implemented nr = Hashtbl.mem handlers nr

let dispatch proc nr args =
  (* Registers the user did not set read as zero; handlers can index
     args.(0..5) safely no matter what user space passed. *)
  let args =
    if Array.length args >= 6 then args
    else Array.init 6 (fun i -> if i < Array.length args then args.(i) else 0L)
  in
  match Hashtbl.find_opt handlers nr with
  | Some h -> (
    (* Containment boundary: a service-level failure raised anywhere
       below (a block read the device could not serve, say) surfaces
       here as the syscall's errno instead of taking the kernel down.
       Invariant violations (Kernel_panic) still propagate. *)
    let res =
      match Ostd.Panic.contain (fun () -> h proc args) with
      | Ok r -> r
      | Error errno ->
        Sim.Stats.incr "syscall.contained_failure";
        Error errno
    in
    (* Syscall exit unplugs the TX queue: segments collected during the
       handler leave as one burst (block-layer plug/flush, ported to the
       NIC). Runs on success and error alike — an errno must not strand
       a half-collected burst. *)
    Netstack.flush_all ();
    match res with
    | Ok v when v = Int64.min_int && nr = N.execve -> Process.Exec_done
    | Ok v -> Process.Ret v
    | Error e -> Process.Ret (Int64.of_int (-e)))
  | None ->
    Sim.Stats.incr "syscall.enosys";
    Process.Ret (Int64.of_int (-Errno.enosys))

let install () =
  Hashtbl.reset fifo_pipes;
  if Hashtbl.length handlers = 0 then register_all ();
  Process.set_syscall_handler dispatch
