(** JBD2-style write-ahead journal for ext2.

    Transactions collect the home block numbers of dirty metadata (and,
    in data-journal mode, data); {!commit} copies their current content
    into the journal area behind two barriers — descriptor + content
    made durable with a device flush, then a checksummed commit record
    written FUA — and {!checkpoint} lazily writes the homes and reuses
    the space. {!replay} at mount restores every complete transaction
    and discards torn ones. Home blocks are pinned in the buffer cache
    from first {!touch} until checkpoint, so ordinary writeback can
    never land half-updated metadata ahead of its commit record.

    Stats: [jbd.commit], [jbd.replayed], [jbd.torn_discarded],
    [jbd.checkpoint]; cycles fold under the kprof scope ["jbd"]. *)

val configure : start:int -> blocks:int -> data:bool -> unit
(** Install the journal area (block numbers [start, start+blocks)) and
    enable journaling. [data] also journals file data blocks. *)

val disable_journal : unit -> unit

val is_enabled : unit -> bool

val journals_data : unit -> bool

val is_committing : unit -> bool
(** Whether a journal commit is in progress right now (observability
    only — feeds the probe plane's journal_commit ctx field). *)

val commits : unit -> int
(** Monotonic count of committed transaction chunks; sample at syscall
    entry and compare at exit to detect commit overlap. *)

val format : unit -> unit
(** Write a fresh, empty journal superblock (mkfs). *)

val touch : int -> unit
(** The caller is about to dirty this home block under journal
    protection: add it to the running transaction and pin it. Touching
    a committed-but-not-checkpointed block checkpoints first. *)

val with_handle : (unit -> 'a) -> 'a
(** Run one mutating fs operation under a journal handle; {!commit}
    drains open handles and holds new ones out, so a commit never
    captures a half-done operation. No-op when journaling is off. *)

val commit : unit -> (unit, int) result
(** Commit the running transaction (chunked if oversized). On return
    the transaction is durable: its content survives any later crash. *)

val checkpoint : unit -> unit
(** Write committed blocks home, make them durable, advance the journal
    tail. Raises a service failure if the device refuses. *)

val replay : unit -> unit
(** Mount-time recovery: scan the journal, restore complete
    transactions in sequence order, discard the first torn one and
    everything after it, then reset the journal. The log of what
    happened is available from {!recovery_log}. *)

val recovery_log : unit -> string list
(** Deterministic description of the last {!replay}: same disk image in,
    byte-identical log out. *)

val reset : unit -> unit
(** Forget all state (new boot). *)
