(** ProcFS: kernel-generated files (/proc). Content is produced by
    registered generators at read time; a few control files (e.g.
    /proc/ktrace) also accept writes that reconfigure the kernel. The
    /proc/kprobe directory exposes loaded probe programs
    ([programs], [<name>/maps], [<name>/insns]). *)

val create_root : unit -> Vfs.inode

val register : string -> (unit -> string) -> unit
(** Add or replace a /proc entry. Standard entries (meminfo, uptime,
    version, syscalls) are registered by {!create_root}. *)

val register_writer : string -> (string -> (unit, int) result) -> unit
(** Make a /proc entry writable: the writer consumes the written string
    as a control command and returns [Ok ()] or [Error errno]. Entries
    with a writer surface as mode 0o644. /proc/ktrace's writer accepts
    "none", "all", a decimal mask, "cat1,cat2" exact sets, and
    "+cat"/"-cat" increments. *)
