(** Pipes and FIFOs: a ring buffer with blocking reader/writer ends.

    Capacity follows the installed profile ([pipe_buffer]); each
    operation charges the per-op pipe cost beyond syscall and copy costs,
    and wake-ups are what drive the lat_pipe / bw_pipe shape. *)

type t

val create : unit -> t

val capacity : t -> int
val available : t -> int
(** Bytes currently buffered. *)

val close_read : t -> unit
val close_write : t -> unit

val read : ?nonblock:bool -> t -> buf:bytes -> pos:int -> len:int -> (int, int) result
(** Blocks while empty (unless the write end is closed -> 0);
    [~nonblock:true] returns EAGAIN instead of blocking. *)

val write : ?nonblock:bool -> t -> buf:bytes -> pos:int -> len:int -> (int, int) result
(** Blocks while full; EPIPE once the read end is closed.
    [~nonblock:true] writes what fits (EAGAIN if nothing does). *)

val readable : t -> bool
val writable : t -> bool

val rd_pollable : t -> Pollable.t
(** Read end: POLLIN on buffered bytes, POLLHUP on writer close. *)

val wr_pollable : t -> Pollable.t
(** Write end: POLLOUT on free space, POLLERR on reader close. *)
