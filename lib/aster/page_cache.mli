(** A per-file page cache over untyped frames — the paper's showcase for
    custom per-frame metadata ([Frame<M>], §4.2): each cached page carries
    a dirty/uptodate state attached through {!Ostd.Frame.set_meta}, the
    way a page cache tracks memory/disk synchronisation.

    RamFS stores file contents here (so user data lives in OSTD-managed
    untyped frames, not OCaml heap buffers), and the dirty tracking is
    what a disk-backed user would drive writeback from. *)

type t

val create : unit -> t

val destroy : t -> unit
(** Drop every cached frame. *)

val pages : t -> int

val read : t -> pos:int -> buf:bytes -> boff:int -> len:int -> unit
(** Uncached (sparse) ranges read as zeroes. *)

val read_view : t -> pos:int -> len:int -> bytes * Ostd.Frame.t list
(** Zero-copy read for the sendfile-to-wire path: no copy charge, and
    each cached frame touched is returned as a cloned (refcounted) pin
    the caller must eventually {!Ostd.Frame.drop} — they keep the pages
    live while a NIC transmits out of them. Pins are counted under
    [net.zc_pin]; sparse ranges read as zeroes and pin nothing. *)

val write : t -> pos:int -> buf:bytes -> boff:int -> len:int -> unit
(** Allocates frames on demand; marks the touched pages dirty. *)

val truncate : t -> int -> unit
(** Free whole pages past the new size and zero the partial tail. *)

val dirty_pages : t -> int

val clean_all : t -> int
(** Clear every dirty mark (what writeback completion would do); returns
    how many pages were dirty. *)

val page_state : t -> int -> (bool * bool) option
(** (dirty, uptodate) for a page index, read back through the frame
    metadata — [None] if the page is not cached. *)
