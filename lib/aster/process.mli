(** Processes: the user-visible unit of execution.

    Each process owns an {!Mm}, an fd table, a cwd, one or more kernel
    tasks (threads), and a user thread per task. The syscall dispatcher
    is injected by {!Syscalls} to break the layering cycle; the
    fork-child resolver is injected by the user-side libc shim, because
    the trap ABI can only carry integers while the simulated child body
    is a closure (see DESIGN.md). *)

type t

type action =
  | Ret of int64       (** normal syscall return value *)
  | Exec_done          (** execve replaced the image; resume fresh *)
  | Terminated         (** the process exited inside the syscall *)

val pid : t -> int
val comm : t -> string
val mm : t -> Mm.t
val fdt : t -> File.Table.t
val cwd : t -> Vfs.resolved
val set_cwd : t -> Vfs.resolved -> unit
val umask : t -> int
val set_umask : t -> int -> unit
val parent_pid : t -> int

val set_syscall_handler : (t -> int -> int64 array -> action) -> unit

val set_child_resolver : (int64 -> (Ostd.User.uapi -> int) option) -> unit
(** Resolve a fork token into the child's body. *)

val resolve_child : int64 -> (Ostd.User.uapi -> int) option

val spawn_init : name:string -> argv:string list -> t
(** Create pid-1 from the program registry and enqueue its task. *)

val spawn_kernel_style : name:string -> (Ostd.User.uapi -> int) -> t
(** Spawn a process from a closure (used by tests and workloads that are
    not registry programs). *)

val fork_current : t -> child:(Ostd.User.uapi -> int) -> int
(** Fork: COW address space, shared-by-value fd table; returns the child
    pid. *)

val spawn_thread : t -> body:(Ostd.User.uapi -> int) -> int
(** Clone with shared mm and fd table (a thread); returns its tid-pid. *)

val do_exec : t -> string -> string list -> (unit, int) result
(** Replace the image (new mm, fresh user thread from the registry). *)

val do_exit : t -> int -> 'a
(** Terminate the calling process's task; never returns in its task. *)

val wait_child : t -> (int * int, int) result
(** Block until a child exits; returns (pid, status). ECHILD if none. *)

val signals : t -> Signal.state

val deliver_signal : t -> int -> unit
(** kill(2) semantics: terminate, queue, or ignore per the target's
    dispositions and mask; terminating the calling process raises. *)

val current : unit -> t
(** The process whose task is running. *)

val by_pid : int -> t option
val alive_count : unit -> int

val task : t -> Ostd.Task.t option
(** The kernel task carrying this process (None before start). *)

val all : unit -> t list
(** Every live or zombie process, sorted by pid. *)

val spawned_count : unit -> int
(** Processes ever created (the /proc/stat [processes] line). *)

val reset : unit -> unit
