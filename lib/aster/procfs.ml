let generators : (string, unit -> string) Hashtbl.t = Hashtbl.create 16

let register name gen = Hashtbl.replace generators name gen

(* Writable proc files: a writer consumes the full written string as a
   control command ([echo sched,probe > /proc/ktrace] style). Files with
   a registered writer get mode 0o644 instead of 0o444. *)
let writers : (string, string -> (unit, int) result) Hashtbl.t = Hashtbl.create 4

let register_writer name fn = Hashtbl.replace writers name fn

type Vfs.priv += Proc_file of string | Proc_root

let file_ops =
  {
    Vfs.default_ops with
    read =
      (fun i ~pos ~buf ~boff ~len ->
        match i.Vfs.priv with
        | Proc_file name -> (
          match Hashtbl.find_opt generators name with
          | None -> Error Errno.enoent
          | Some gen ->
            let content = gen () in
            let clen = String.length content in
            if pos >= clen then Ok 0
            else begin
              let n = min len (clen - pos) in
              Bytes.blit_string content pos buf boff n;
              Ok n
            end)
        | _ -> Error Errno.einval);
    write =
      (fun i ~pos:_ ~buf ~boff ~len ->
        match i.Vfs.priv with
        | Proc_file name -> (
          match Hashtbl.find_opt writers name with
          | None -> Error Errno.einval
          | Some fn -> (
            match fn (Bytes.sub_string buf boff len) with
            | Ok () -> Ok len
            | Error e -> Error e))
        | _ -> Error Errno.einval);
  }

(* Inodes are generated on demand and cached per name so ino stays
   stable across lookups. *)
let file_cache : (string, Vfs.inode) Hashtbl.t = Hashtbl.create 16

let file_inode name =
  match Hashtbl.find_opt file_cache name with
  | Some i -> i
  | None ->
    let mode = if Hashtbl.mem writers name then 0o644 else 0o444 in
    let i = Vfs.make_inode ~fsname:"procfs" ~kind:Vfs.Reg ~mode ~ops:file_ops () in
    i.Vfs.priv <- Proc_file name;
    Hashtbl.replace file_cache name i;
    i

(* Per-process directories: /proc/<pid>/{status,comm}. *)
let pid_dir_cache : (int, Vfs.inode) Hashtbl.t = Hashtbl.create 16

let pid_status pid () =
  match Process.by_pid pid with
  | None -> ""
  | Some p ->
    Printf.sprintf "Name:\t%s\nPid:\t%d\nPPid:\t%d\nState:\tR (running)\nSigPnd:\t%08x\n"
      (Process.comm p) pid (Process.parent_pid p)
      (Signal.pending (Process.signals p))

let pid_comm pid () =
  match Process.by_pid pid with None -> "" | Some p -> Process.comm p ^ "\n"

(* CLK_TCK = 100: /proc times are reported in 10ms ticks. *)
let cycles_per_tick = Int64.of_int (Sim.Clock.cycles_per_us * 10_000)

let ticks c = Int64.div c cycles_per_tick

(* /proc/<pid>/stat, the first 17 of Linux's fields (through cstime):
   what matters here is utime (field 14) and stime (field 15). *)
let pid_stat pid () =
  match Process.by_pid pid with
  | None -> ""
  | Some p ->
    let ut, st =
      match Process.task p with Some t -> Ostd.Task.cpu_times t | None -> (0L, 0L)
    in
    Printf.sprintf "%d (%s) R %d 0 0 0 0 0 0 0 0 0 %Ld %Ld 0 0\n" pid (Process.comm p)
      (Process.parent_pid p) (ticks ut) (ticks st)

let pid_schedstat pid () =
  match Process.by_pid pid with
  | None -> ""
  | Some p -> (
    match Process.task p with
    | None -> "0 0 0\n"
    | Some t ->
      let ut, st = Ostd.Task.cpu_times t in
      let cnt, sum, _ = Ostd.Task.sched_delay t in
      (* Linux schedstat: cputime_ns rundelay_ns timeslices. *)
      let to_ns c = Int64.div (Int64.mul c 1000L) (Int64.of_int Sim.Clock.cycles_per_us) in
      Printf.sprintf "%Ld %Ld %d\n" (to_ns (Int64.add ut st)) (to_ns sum) cnt)

(* /proc/<pid>/fdinfo: one line per open descriptor; epoll fds expand
   to their interest/ready state the way Linux's fdinfo prints
   "tfd: ... events: ... data: ..." lines. Rendering folds the fd
   table cost-free — observability must not perturb the schedule. *)
let pid_fdinfo pid () =
  match Process.by_pid pid with
  | None -> ""
  | Some p ->
    let desc_name f =
      match f.File.desc with
      | File.Inode_file _ -> "file"
      | File.Pipe_read _ -> "pipe:r"
      | File.Pipe_write _ -> "pipe:w"
      | File.Epoll _ -> "epoll"
      | File.Socket s -> (
        match s.File.st with
        | File.S_unbound -> "sock:unbound"
        | File.S_tcp_listener _ -> "sock:tcp-listen"
        | File.S_tcp_conn _ -> "sock:tcp"
        | File.S_udp _ -> "sock:udp"
        | File.S_unix_listener _ -> "sock:unix-listen"
        | File.S_unix_conn _ -> "sock:unix")
    in
    let rows =
      File.Table.fold (Process.fdt p)
        (fun fd f acc ->
          let line =
            Printf.sprintf "fd: %d flags: %o refs: %d type: %s\n" fd f.File.flags f.File.refs
              (desc_name f)
          in
          let extra = match f.File.desc with File.Epoll e -> Epoll.render e | _ -> "" in
          (fd, line ^ extra) :: acc)
        []
    in
    let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
    String.concat "" (List.map snd rows)

let pid_dir pid =
  match Hashtbl.find_opt pid_dir_cache pid with
  | Some d -> d
  | None ->
    let status_name = Printf.sprintf "pid.%d.status" pid in
    let comm_name = Printf.sprintf "pid.%d.comm" pid in
    let stat_name = Printf.sprintf "pid.%d.stat" pid in
    let schedstat_name = Printf.sprintf "pid.%d.schedstat" pid in
    let fdinfo_name = Printf.sprintf "pid.%d.fdinfo" pid in
    register status_name (pid_status pid);
    register comm_name (pid_comm pid);
    register stat_name (pid_stat pid);
    register schedstat_name (pid_schedstat pid);
    register fdinfo_name (pid_fdinfo pid);
    let ops =
      {
        Vfs.default_ops with
        lookup =
          (fun _ name ->
            match name with
            | "status" -> Some (file_inode status_name)
            | "comm" -> Some (file_inode comm_name)
            | "stat" -> Some (file_inode stat_name)
            | "schedstat" -> Some (file_inode schedstat_name)
            | "fdinfo" -> Some (file_inode fdinfo_name)
            | _ -> None);
        readdir =
          (fun _ ->
            [
              ("status", file_inode status_name);
              ("comm", file_inode comm_name);
              ("stat", file_inode stat_name);
              ("schedstat", file_inode schedstat_name);
              ("fdinfo", file_inode fdinfo_name);
            ]);
      }
    in
    let d = Vfs.make_inode ~fsname:"procfs" ~kind:Vfs.Dir ~mode:0o555 ~ops () in
    Hashtbl.replace pid_dir_cache pid d;
    d

(* --- /proc/kprobe: loaded probe programs ----------------------------
   kprobe/programs       one-line-per-program listing (+ last_error)
   kprobe/<name>/maps    rendered map contents of a loaded program
   kprobe/<name>/insns   disassembly of its verified bytecode *)

let kprobe_prog_cache : (string, Vfs.inode) Hashtbl.t = Hashtbl.create 8

let kprobe_prog_dir pname =
  match Hashtbl.find_opt kprobe_prog_cache pname with
  | Some d -> d
  | None ->
    let maps_name = "kprobe." ^ pname ^ ".maps" in
    let insns_name = "kprobe." ^ pname ^ ".insns" in
    (* the generators query the registry at read time, so a program
       unloaded after lookup just reads back empty *)
    register maps_name (fun () ->
        match Kprobe.Registry.render_maps pname with Some s -> s | None -> "");
    register insns_name (fun () ->
        match Kprobe.Registry.render_prog pname with Some s -> s | None -> "");
    let ops =
      {
        Vfs.default_ops with
        lookup =
          (fun _ name ->
            match name with
            | "maps" -> Some (file_inode maps_name)
            | "insns" -> Some (file_inode insns_name)
            | _ -> None);
        readdir =
          (fun _ -> [ ("maps", file_inode maps_name); ("insns", file_inode insns_name) ]);
      }
    in
    let d = Vfs.make_inode ~fsname:"procfs" ~kind:Vfs.Dir ~mode:0o555 ~ops () in
    Hashtbl.replace kprobe_prog_cache pname d;
    d

let kprobe_dir_ops =
  {
    Vfs.default_ops with
    lookup =
      (fun _ name ->
        if name = "programs" then Some (file_inode "kprobe.programs")
        else
          match Kprobe.Registry.find name with
          | Some _ -> Some (kprobe_prog_dir name)
          | None -> None);
    readdir =
      (fun _ ->
        ("programs", file_inode "kprobe.programs")
        :: List.map (fun n -> (n, kprobe_prog_dir n)) (Kprobe.Registry.list ()));
  }

let kprobe_dir_cache : Vfs.inode option ref = ref None

let kprobe_dir () =
  match !kprobe_dir_cache with
  | Some d -> d
  | None ->
    let d =
      Vfs.make_inode ~fsname:"procfs" ~kind:Vfs.Dir ~mode:0o555 ~ops:kprobe_dir_ops ()
    in
    kprobe_dir_cache := Some d;
    d

let root_ops =
  {
    Vfs.default_ops with
    lookup =
      (fun _ name ->
        if name = "kprobe" then Some (kprobe_dir ())
        else if Hashtbl.mem generators name then Some (file_inode name)
        else
          match int_of_string_opt name with
          | Some pid when Process.by_pid pid <> None -> Some (pid_dir pid)
          | Some _ | None -> None);
    readdir =
      (fun _ ->
        ("kprobe", kprobe_dir ())
        :: (Hashtbl.fold (fun name _ acc -> (name, file_inode name) :: acc) generators []
           |> List.sort compare));
  }

(* /proc/ktrace accepts mask commands on write (whitespace-trimmed,
   case-insensitive):
     "none" | "0"          disable every category
     "all"                 enable every category
     "<decimal>"           set the raw mask value (unknown bits ignored)
     "cat1,cat2,..."       enable exactly the named categories
     "+cat" / "-cat" ...   enable/disable incrementally
   Malformed input (unknown names, negative numbers, mixed forms) fails
   with EINVAL and leaves the mask untouched. *)
let ktrace_write raw =
  let s = String.trim (String.lowercase_ascii raw) in
  if s = "" then Error Errno.einval
  else if s = "none" || s = "0" then begin
    Sim.Trace.disable_all ();
    Ok ()
  end
  else if s = "all" then begin
    Sim.Trace.enable_all ();
    Ok ()
  end
  else
    match int_of_string_opt s with
    | Some n when n >= 0 ->
      Sim.Trace.set_mask n;
      Ok ()
    | Some _ -> Error Errno.einval
    | None ->
      let toks =
        String.split_on_char ',' s
        |> List.concat_map (String.split_on_char ' ')
        |> List.filter (fun t -> t <> "")
      in
      let incr_tok t = String.length t > 1 && (t.[0] = '+' || t.[0] = '-') in
      if toks = [] then Error Errno.einval
      else if List.for_all incr_tok toks then begin
        (* validate the whole command before applying any part of it *)
        let parsed =
          List.map
            (fun t ->
              match Sim.Trace.category_of_string (String.sub t 1 (String.length t - 1)) with
              | Some c -> Some (t.[0] = '+', c)
              | None -> None)
            toks
        in
        if List.mem None parsed then Error Errno.einval
        else begin
          List.iter
            (function
              | Some (true, c) -> Sim.Trace.enable c
              | Some (false, c) -> Sim.Trace.disable c
              | None -> ())
            parsed;
          Ok ()
        end
      end
      else begin
        let cats = List.map Sim.Trace.category_of_string toks in
        if List.mem None cats then Error Errno.einval
        else begin
          Sim.Trace.disable_all ();
          List.iter (function Some c -> Sim.Trace.enable c | None -> ()) cats;
          Ok ()
        end
      end

(* /proc/kstat accepts "reset" on write: zero every counter and
   histogram. Same validate-before-apply contract as the ktrace writer:
   anything else fails with EINVAL and touches nothing. *)
let kstat_write raw =
  match String.trim (String.lowercase_ascii raw) with
  | "reset" ->
    Sim.Stats.reset ();
    Sim.Hist.reset ();
    Ok ()
  | _ -> Error Errno.einval

let standard_entries () =
  register_writer "ktrace" ktrace_write;
  register_writer "kstat" kstat_write;
  register "kprobe.programs" (fun () -> Kprobe.Registry.render_list ());
  register "meminfo" (fun () ->
      let total = Ostd.Frame.total_frames () * 4 in
      Printf.sprintf "MemTotal: %d kB\nMemFree: (dynamic)\n" total);
  register "uptime" (fun () -> Printf.sprintf "%.2f\n" (Ktime.seconds ()));
  register "version" (fun () ->
      "Asterinas-OCaml framekernel reproduction (Linux ABI compatible)\n");
  register "syscalls" (fun () ->
      String.concat ""
        (List.map (fun (n, c) -> Printf.sprintf "%s %d\n" n c) (Strace.top 50)));
  (* --- ktrace observability surface --- *)
  register "ktrace" (fun () ->
      let cats =
        match Sim.Trace.enabled_categories () with
        | [] -> "none"
        | cs -> String.concat "," (List.map Sim.Trace.category_name cs)
      in
      let header =
        Printf.sprintf "# ktrace: %d/%d buffered, %d dropped, %d total; enabled: %s\n"
          (Sim.Trace.length ()) (Sim.Trace.capacity ()) (Sim.Trace.dropped ())
          (Sim.Trace.total ()) cats
      in
      let body = Sim.Trace.render () in
      if body = "" then header else header ^ body ^ "\n");
  register "kstat" (fun () ->
      let counters =
        List.map (fun (n, c) -> Printf.sprintf "%-40s %d\n" n c) (Sim.Stats.counters ())
      in
      let hists =
        match Sim.Hist.all () with
        | [] -> []
        | hs ->
          ("\n" ^ Sim.Hist.summary_header ^ "\n")
          :: List.map (fun (n, h) -> Sim.Hist.summary_line n h ^ "\n") hs
      in
      String.concat "" (counters @ hists));
  (* --- segmentation-offload observability surface (ethtool -k style) --- *)
  register "net.offloads" (fun () ->
      let p = Sim.Profile.get () in
      let b k = if k then "on" else "off" in
      let g = Sim.Stats.get in
      String.concat ""
        [
          Printf.sprintf "tcp-segmentation-offload: %s (gso_max_size %d)\n"
            (b p.Sim.Profile.tcp_gso) p.Sim.Profile.gso_max_size;
          Printf.sprintf "generic-receive-offload: %s\n" (b p.Sim.Profile.net_gro);
          Printf.sprintf "tx-checksumming: %s\n" (b p.Sim.Profile.csum_tx_offload);
          Printf.sprintf "rx-checksumming: %s\n" (b p.Sim.Profile.csum_rx_offload);
          Printf.sprintf "sendfile-zero-copy: %s\n" (b p.Sim.Profile.sendfile_zero_copy);
          Printf.sprintf "tso_wire_frames %d\n" (g "virtio_net.tso_frames");
          Printf.sprintf "gro_merged %d\n" (g "net.gro_merged");
          Printf.sprintf "bytes_copied %d\n" (g "net.bytes_copied");
          Printf.sprintf "zc_pin %d\nzc_unpin %d\n" (g "net.zc_pin") (g "net.zc_unpin");
        ]);
  (* --- kspan observability surface --- *)
  register "kspan" (fun () -> Sim.Span.render_proc ());
  (* --- kprof observability surface --- *)
  register "stat" (fun () ->
      let ut, st = Ostd.Task.aggregate_cpu_times () in
      let elapsed = Sim.Clock.now () in
      let busy = Int64.add ut st in
      let idle = if Int64.compare elapsed busy > 0 then Int64.sub elapsed busy else 0L in
      String.concat ""
        [
          Printf.sprintf "cpu  %Ld 0 %Ld %Ld 0 0 0 0 0 0\n" (ticks ut) (ticks st)
            (ticks idle);
          Printf.sprintf "ctxt %d\n" (Ostd.Task.context_switches ());
          Printf.sprintf "btime %.0f\n" Ktime.boot_epoch_seconds;
          Printf.sprintf "processes %d\n" (Process.spawned_count ());
          Printf.sprintf "procs_running %d\n" (Process.alive_count ());
        ]);
  register "schedstat" (fun () ->
      let per_pid =
        List.filter_map
          (fun p ->
            match Process.task p with
            | None -> None
            | Some t ->
              let cnt, sum, mx = Ostd.Task.sched_delay t in
              let nv, niv = Ostd.Task.ctx_switches t in
              Some
                (Printf.sprintf "pid %d comm %s dispatches %d delay_us %.1f max_us %.1f nvcsw %d nivcsw %d\n"
                   (Process.pid p) (Process.comm p) cnt (Sim.Clock.to_us sum)
                   (Sim.Clock.to_us mx) nv niv))
          (Process.all ())
      in
      String.concat ""
        (Printf.sprintf "version 15\nctxt %d\n" (Ostd.Task.context_switches ()) :: per_pid));
  register "lock_stat" (fun () ->
      let counters = Sim.Stats.by_prefix "lock." in
      let hists =
        List.filter
          (fun (n, _) -> String.length n >= 5 && String.sub n 0 5 = "lock.")
          (Sim.Hist.all ())
      in
      if counters = [] && hists = [] then "lock_stat version 0.4\n"
      else
        String.concat ""
          ("lock_stat version 0.4\n"
           :: (List.map (fun (n, c) -> Printf.sprintf "%-40s %d\n" n c) counters
              @
              match hists with
              | [] -> []
              | hs ->
                ("\n" ^ Sim.Hist.summary_header ^ "\n")
                :: List.map (fun (n, h) -> Sim.Hist.summary_line n h ^ "\n") hs)));
  register "kprof" (fun () ->
      let header =
        Printf.sprintf "# kprof: enabled=%b elapsed=%Ld attributed=%Ld conserved=%b\n"
          (Sim.Prof.enabled ()) (Sim.Prof.elapsed ()) (Sim.Prof.total_attributed ())
          (Sim.Prof.conserved ())
      in
      let body = Sim.Prof.render_folded () in
      if body = "" then header else header ^ body ^ "\n");
  register "faults" (fun () ->
      let quartet =
        List.map (fun (k, v) -> Printf.sprintf "%-12s %d\n" k v) (Sim.Stats.fault_report ())
      in
      let sites =
        match Sim.Stats.by_prefix "fault.injected." with
        | [] -> []
        | ss ->
          "\nper-site injections:\n"
          :: List.map
               (fun (k, v) ->
                 let site =
                   String.sub k (String.length "fault.injected.")
                     (String.length k - String.length "fault.injected.")
                 in
                 Printf.sprintf "%-24s %d\n" site v)
               ss
      in
      String.concat "" (quartet @ sites))

let create_root () =
  Hashtbl.reset file_cache;
  Hashtbl.reset pid_dir_cache;
  Hashtbl.reset kprobe_prog_cache;
  kprobe_dir_cache := None;
  standard_entries ();
  let root = Vfs.make_inode ~fsname:"procfs" ~kind:Vfs.Dir ~mode:0o555 ~ops:root_ops () in
  root.Vfs.priv <- Proc_root;
  root
