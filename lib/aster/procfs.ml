let generators : (string, unit -> string) Hashtbl.t = Hashtbl.create 16

let register name gen = Hashtbl.replace generators name gen

type Vfs.priv += Proc_file of string | Proc_root

let file_ops =
  {
    Vfs.default_ops with
    read =
      (fun i ~pos ~buf ~boff ~len ->
        match i.Vfs.priv with
        | Proc_file name -> (
          match Hashtbl.find_opt generators name with
          | None -> Error Errno.enoent
          | Some gen ->
            let content = gen () in
            let clen = String.length content in
            if pos >= clen then Ok 0
            else begin
              let n = min len (clen - pos) in
              Bytes.blit_string content pos buf boff n;
              Ok n
            end)
        | _ -> Error Errno.einval);
  }

(* Inodes are generated on demand and cached per name so ino stays
   stable across lookups. *)
let file_cache : (string, Vfs.inode) Hashtbl.t = Hashtbl.create 16

let file_inode name =
  match Hashtbl.find_opt file_cache name with
  | Some i -> i
  | None ->
    let i = Vfs.make_inode ~fsname:"procfs" ~kind:Vfs.Reg ~mode:0o444 ~ops:file_ops () in
    i.Vfs.priv <- Proc_file name;
    Hashtbl.replace file_cache name i;
    i

(* Per-process directories: /proc/<pid>/{status,comm}. *)
let pid_dir_cache : (int, Vfs.inode) Hashtbl.t = Hashtbl.create 16

let pid_status pid () =
  match Process.by_pid pid with
  | None -> ""
  | Some p ->
    Printf.sprintf "Name:\t%s\nPid:\t%d\nPPid:\t%d\nState:\tR (running)\nSigPnd:\t%08x\n"
      (Process.comm p) pid (Process.parent_pid p)
      (Signal.pending (Process.signals p))

let pid_comm pid () =
  match Process.by_pid pid with None -> "" | Some p -> Process.comm p ^ "\n"

let pid_dir pid =
  match Hashtbl.find_opt pid_dir_cache pid with
  | Some d -> d
  | None ->
    let status_name = Printf.sprintf "pid.%d.status" pid in
    let comm_name = Printf.sprintf "pid.%d.comm" pid in
    register status_name (pid_status pid);
    register comm_name (pid_comm pid);
    let ops =
      {
        Vfs.default_ops with
        lookup =
          (fun _ name ->
            match name with
            | "status" -> Some (file_inode status_name)
            | "comm" -> Some (file_inode comm_name)
            | _ -> None);
        readdir =
          (fun _ ->
            [ ("status", file_inode status_name); ("comm", file_inode comm_name) ]);
      }
    in
    let d = Vfs.make_inode ~fsname:"procfs" ~kind:Vfs.Dir ~mode:0o555 ~ops () in
    Hashtbl.replace pid_dir_cache pid d;
    d

let root_ops =
  {
    Vfs.default_ops with
    lookup =
      (fun _ name ->
        if Hashtbl.mem generators name then Some (file_inode name)
        else
          match int_of_string_opt name with
          | Some pid when Process.by_pid pid <> None -> Some (pid_dir pid)
          | Some _ | None -> None);
    readdir =
      (fun _ ->
        Hashtbl.fold (fun name _ acc -> (name, file_inode name) :: acc) generators []
        |> List.sort compare);
  }

let standard_entries () =
  register "meminfo" (fun () ->
      let total = Ostd.Frame.total_frames () * 4 in
      Printf.sprintf "MemTotal: %d kB\nMemFree: (dynamic)\n" total);
  register "uptime" (fun () -> Printf.sprintf "%.2f\n" (Ktime.seconds ()));
  register "version" (fun () ->
      "Asterinas-OCaml framekernel reproduction (Linux ABI compatible)\n");
  register "syscalls" (fun () ->
      String.concat ""
        (List.map (fun (n, c) -> Printf.sprintf "%s %d\n" n c) (Strace.top 50)));
  (* --- ktrace observability surface --- *)
  register "ktrace" (fun () ->
      let cats =
        match Sim.Trace.enabled_categories () with
        | [] -> "none"
        | cs -> String.concat "," (List.map Sim.Trace.category_name cs)
      in
      let header =
        Printf.sprintf "# ktrace: %d/%d buffered, %d dropped, %d total; enabled: %s\n"
          (Sim.Trace.length ()) (Sim.Trace.capacity ()) (Sim.Trace.dropped ())
          (Sim.Trace.total ()) cats
      in
      let body = Sim.Trace.render () in
      if body = "" then header else header ^ body ^ "\n");
  register "kstat" (fun () ->
      let counters =
        List.map (fun (n, c) -> Printf.sprintf "%-40s %d\n" n c) (Sim.Stats.counters ())
      in
      let hists =
        match Sim.Hist.all () with
        | [] -> []
        | hs ->
          ("\n" ^ Sim.Hist.summary_header ^ "\n")
          :: List.map (fun (n, h) -> Sim.Hist.summary_line n h ^ "\n") hs
      in
      String.concat "" (counters @ hists));
  register "faults" (fun () ->
      let quartet =
        List.map (fun (k, v) -> Printf.sprintf "%-12s %d\n" k v) (Sim.Stats.fault_report ())
      in
      let sites =
        match Sim.Stats.by_prefix "fault.injected." with
        | [] -> []
        | ss ->
          "\nper-site injections:\n"
          :: List.map
               (fun (k, v) ->
                 let site =
                   String.sub k (String.length "fault.injected.")
                     (String.length k - String.length "fault.injected.")
                 in
                 Printf.sprintf "%-24s %d\n" site v)
               ss
      in
      String.concat "" (quartet @ sites))

let create_root () =
  Hashtbl.reset file_cache;
  Hashtbl.reset pid_dir_cache;
  standard_entries ();
  let root = Vfs.make_inode ~fsname:"procfs" ~kind:Vfs.Dir ~mode:0o555 ~ops:root_ops () in
  root.Vfs.priv <- Proc_root;
  root
