(* epoll: an interest list + ready list over the Pollable seam.

   Each registered fd holds one [entry]; a Pollable watcher enqueues
   the entry onto the ready queue when an edge intersects its interest
   mask. `epoll_wait` therefore touches only the *ready* queue — its
   cost scales with ready fds, never with registered fds (the
   `epoll.scan_work` counter measures exactly the entries examined per
   wait, and the c10k bench gates on it staying flat as idle
   registrations grow).

   Triggering modes over the ready queue:
   - LT: a reported entry whose level still intersects its interest is
     re-appended — it stays visible until drained.
   - ET: a reported entry is dequeued; only a fresh edge publication
     re-queues it (no re-report without a transition).
   - ONESHOT: reported once, then disarmed until EPOLL_CTL_MOD.

   EPOLLERR/EPOLLHUP are always reported regardless of the requested
   mask, as on Linux. *)

let epollin = Pollable.pollin
let epollpri = Pollable.pollpri
let epollout = Pollable.pollout
let epollerr = Pollable.pollerr
let epollhup = Pollable.pollhup
let epollrdhup = Pollable.pollrdhup
let epolloneshot = 1 lsl 30
let epollet = 1 lsl 31

(* epoll_ctl ops *)
let op_add = 1
let op_del = 2
let op_mod = 3

type entry = {
  e_fd : int;
  e_pollable : Pollable.t;
  mutable e_events : int; (* interest mask incl. ET/ONESHOT flags *)
  mutable e_data : int64; (* opaque user cookie, returned verbatim *)
  mutable e_queued : bool; (* on the ready queue *)
  mutable e_disarmed : bool; (* ONESHOT fired, awaiting MOD *)
  mutable e_dead : bool; (* DEL'd or instance closed *)
  mutable e_watcher : Pollable.watcher option;
}

type t = {
  id : int;
  interest : (int, entry) Hashtbl.t;
  ready : entry Queue.t;
  wq : Ostd.Wait_queue.t;
  pollable : Pollable.t; (* the epoll fd is itself pollable (nesting) *)
  mutable closed : bool;
}

let next_id = ref 0
let reset_ids () = next_id := 0

(* Bits [wait] may report for an entry: the requested readiness bits
   plus ERR/HUP which are unmaskable. *)
let report_mask e =
  e.e_events land (epollin lor epollout lor epollpri lor epollrdhup) lor epollerr lor epollhup

let ready_count t =
  Queue.fold (fun n e -> if e.e_dead then n else n + 1) 0 t.ready

let enqueue t e =
  if (not e.e_dead) && (not e.e_disarmed) && not e.e_queued then begin
    e.e_queued <- true;
    Queue.push e t.ready;
    ignore (Ostd.Wait_queue.wake_all t.wq : int);
    Pollable.publish t.pollable Pollable.pollin
  end

let create () =
  incr next_id;
  let t =
    {
      id = !next_id;
      interest = Hashtbl.create 64;
      ready = Queue.create ();
      wq = Ostd.Wait_queue.create ();
      pollable = Pollable.create (fun () -> 0);
      closed = false;
    }
  in
  Pollable.set_level t.pollable (fun () -> if ready_count t > 0 then Pollable.pollin else 0);
  t

let pollable t = t.pollable
let id t = t.id
let interest_count t = Hashtbl.length t.interest

let ctl_add t ~fd ~pollable:p ~events ~data =
  if Hashtbl.mem t.interest fd then Error Errno.eexist
  else begin
    let e =
      {
        e_fd = fd;
        e_pollable = p;
        e_events = events;
        e_data = data;
        e_queued = false;
        e_disarmed = false;
        e_dead = false;
        e_watcher = None;
      }
    in
    let w =
      Pollable.attach p (fun edge ->
          if edge land Pollable.pollfree <> 0 then begin
            (* Object destroyed: drop the registration, as Linux does
               when the last reference to a registered file goes away.
               The watcher list is being cleared by [Pollable.free], so
               no detach — just forget the entry. *)
            e.e_dead <- true;
            e.e_watcher <- None;
            Hashtbl.remove t.interest e.e_fd
          end
          else if edge land report_mask e <> 0 then enqueue t e)
    in
    e.e_watcher <- Some w;
    Hashtbl.replace t.interest fd e;
    (* Linux reports already-pending readiness on ADD, even for ET. *)
    if Pollable.level p land report_mask e <> 0 then enqueue t e;
    Ok ()
  end

let ctl_mod t ~fd ~events ~data =
  match Hashtbl.find_opt t.interest fd with
  | None -> Error Errno.enoent
  | Some e ->
    e.e_events <- events;
    e.e_data <- data;
    e.e_disarmed <- false;
    if Pollable.level e.e_pollable land report_mask e <> 0 then enqueue t e;
    Ok ()

let ctl_del t ~fd =
  match Hashtbl.find_opt t.interest fd with
  | None -> Error Errno.enoent
  | Some e ->
    e.e_dead <- true;
    (match e.e_watcher with Some w -> Pollable.detach e.e_pollable w | None -> ());
    e.e_watcher <- None;
    Hashtbl.remove t.interest fd;
    (* A queued dead entry is skipped (and dropped) by the next sweep. *)
    Ok ()

(* Drain up to [maxevents] ready entries. The budget pins the sweep to
   the entries present at entry time so LT re-appends can't spin it. *)
let collect t ~maxevents =
  let out = ref [] in
  let n = ref 0 in
  let budget = ref (Queue.length t.ready) in
  while !n < maxevents && !budget > 0 do
    decr budget;
    let e = Queue.pop t.ready in
    Sim.Stats.incr "epoll.scan_work";
    Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.fd_lookup;
    if e.e_dead then e.e_queued <- false
    else begin
      let r = Pollable.level e.e_pollable land report_mask e in
      if r = 0 then e.e_queued <- false (* consumed before we looked *)
      else begin
        out := (e.e_data, r) :: !out;
        incr n;
        if e.e_events land epolloneshot <> 0 then begin
          e.e_disarmed <- true;
          e.e_queued <- false
        end
        else if e.e_events land epollet <> 0 then e.e_queued <- false
        else Queue.push e t.ready
      end
    end
  done;
  List.rev !out

(* timeout_cycles < 0: block until ready; 0: non-blocking probe;
   > 0: block, returning [] at exactly now+timeout_cycles (virtual)
   if nothing became ready — the bound is a timer-wheel entry, so 10k
   waiters armed and cancelled per churn round stay O(1) each. *)
let wait t ~maxevents ~timeout_cycles =
  Sim.Stats.incr "epoll.wait_calls";
  if maxevents <= 0 then []
  else begin
    let deadline =
      if timeout_cycles > 0 then Some (Int64.add (Sim.Clock.now ()) (Int64.of_int timeout_cycles))
      else None
    in
    let rec go () =
      let evs = collect t ~maxevents in
      if evs <> [] then begin
        Sim.Stats.incr "epoll.wakeups";
        evs
      end
      else if t.closed || timeout_cycles = 0 then evs
      else
        match deadline with
        | None ->
          Ostd.Wait_queue.sleep t.wq;
          go ()
        | Some dl ->
          if Int64.compare (Sim.Clock.now ()) dl >= 0 then []
          else begin
            let me = Ostd.Task.current () in
            let wheel = Timer_wheel.the () in
            let tm = Timer_wheel.arm wheel ~deadline:dl (fun () -> Ostd.Task.wake me) in
            Ostd.Wait_queue.sleep t.wq;
            Timer_wheel.cancel wheel tm;
            go ()
          end
    in
    go ()
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    Hashtbl.iter
      (fun _ e ->
        e.e_dead <- true;
        match e.e_watcher with
        | Some w ->
          Pollable.detach e.e_pollable w;
          e.e_watcher <- None
        | None -> ())
      t.interest;
    Hashtbl.reset t.interest;
    Queue.clear t.ready;
    ignore (Ostd.Wait_queue.wake_all t.wq : int)
  end

(* /proc/<pid>/fdinfo-style rendering: one line per registration, the
   way Linux prints "tfd: ... events: ... data: ...". *)
let render t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "epoll:%d interest:%d ready:%d\n" t.id (Hashtbl.length t.interest)
       (ready_count t));
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) t.interest [] in
  let entries = List.sort (fun a b -> compare a.e_fd b.e_fd) entries in
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "tfd: %d events: %8x data: %Lx%s%s\n" e.e_fd
           (e.e_events land 0xffffffff) e.e_data
           (if e.e_queued then " ready" else "")
           (if e.e_disarmed then " oneshot-disarmed" else "")))
    entries;
  Buffer.contents b
