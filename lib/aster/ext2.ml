let block_size = Block.block_size

let magic = 0xEF53_2025

(* Layout (block numbers). *)
let sb_block = 0
let block_bitmap = 1
let inode_bitmap = 2
let inode_table_start = 3
let inode_size = 128
let inodes_per_block = block_size / inode_size
let ninodes = 4096
let inode_table_blocks = ninodes / inodes_per_block

(* Write-ahead journal area, between the inode table and the data. *)
let journal_start = inode_table_start + inode_table_blocks
let journal_blocks = 64
let first_data_block = journal_start + journal_blocks

let ptrs_per_block = block_size / 4
let ndirect = 12
let max_file_blocks = ndirect + ptrs_per_block + (ptrs_per_block * ptrs_per_block)

let root_ino = 2

(* Disk inode field offsets. *)
let di_mode = 0
let di_size = 4
let di_nlink = 8
let di_direct = 12 (* 12 x u32 *)
let di_indirect = 60
let di_dindirect = 64

let kind_bits = function
  | Vfs.Dir -> 0x4000
  | Vfs.Reg -> 0x8000
  | Vfs.Lnk -> 0xA000
  | Vfs.Fifo -> 0x1000
  | Vfs.Sock -> 0xC000
  | Vfs.Chr -> 0x2000

let kind_of_bits bits =
  match bits land 0xF000 with
  | 0x4000 -> Vfs.Dir
  | 0xA000 -> Vfs.Lnk
  | 0x1000 -> Vfs.Fifo
  | 0xC000 -> Vfs.Sock
  | 0x2000 -> Vfs.Chr
  | _ -> Vfs.Reg

(* --- Raw block helpers --- *)

let scratch4 = Bytes.create 4

let read_u32_at block off =
  Block.read_from_block block ~off ~buf:scratch4 ~pos:0 ~len:4;
  Int32.to_int (Bytes.get_int32_le scratch4 0) land 0xffffffff

(* Every u32 metadata write (superblock, inode table, indirect blocks)
   funnels through here, so hooking the journal at this choke point
   puts all of them under transaction protection. *)
let write_u32_at block off v =
  Jbd.touch block;
  Bytes.set_int32_le scratch4 0 (Int32.of_int v);
  Block.write_to_block block ~off ~buf:scratch4 ~pos:0 ~len:4

(* --- Superblock --- *)

let sb_magic () = read_u32_at sb_block 0
let sb_free_blocks () = read_u32_at sb_block 12
let sb_free_inodes () = read_u32_at sb_block 16
let set_sb_free_blocks v = write_u32_at sb_block 12 v
let set_sb_free_inodes v = write_u32_at sb_block 16 v

let inodes_total () = ninodes
let free_blocks () = sb_free_blocks ()
let free_inodes () = sb_free_inodes ()

(* --- Bitmaps --- *)

let bit_get bitmap_block i =
  let byte = Bytes.create 1 in
  Block.read_from_block bitmap_block ~off:(i / 8) ~buf:byte ~pos:0 ~len:1;
  Char.code (Bytes.get byte 0) land (1 lsl (i mod 8)) <> 0

let bit_set bitmap_block i v =
  Jbd.touch bitmap_block;
  let byte = Bytes.create 1 in
  Block.read_from_block bitmap_block ~off:(i / 8) ~buf:byte ~pos:0 ~len:1;
  let b = Char.code (Bytes.get byte 0) in
  let b = if v then b lor (1 lsl (i mod 8)) else b land lnot (1 lsl (i mod 8)) in
  Bytes.set byte 0 (Char.chr (b land 0xff));
  Block.write_to_block bitmap_block ~off:(i / 8) ~buf:byte ~pos:0 ~len:1

let device_blocks () = Block.capacity_sectors () / Block.sectors_per_block

let alloc_hint = ref first_data_block

let alloc_block () =
  let total = min (device_blocks ()) (block_size * 8) in
  let rec scan i tried =
    if tried > total then Ostd.Panic.panic "ext2: out of disk blocks"
    else
      let i = if i >= total then first_data_block else i in
      if bit_get block_bitmap i then scan (i + 1) (tried + 1)
      else begin
        bit_set block_bitmap i true;
        set_sb_free_blocks (sb_free_blocks () - 1);
        alloc_hint := i + 1;
        Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.fs_new_page;
        Block.zero_block i;
        i
      end
  in
  scan !alloc_hint 0

let free_block b =
  bit_set block_bitmap b false;
  set_sb_free_blocks (sb_free_blocks () + 1)

let alloc_ino () =
  let rec scan i =
    if i >= ninodes then Ostd.Panic.panic "ext2: out of inodes"
    else if bit_get inode_bitmap i then scan (i + 1)
    else begin
      bit_set inode_bitmap i true;
      set_sb_free_inodes (sb_free_inodes () - 1);
      i
    end
  in
  scan root_ino

let free_ino i =
  bit_set inode_bitmap i false;
  set_sb_free_inodes (sb_free_inodes () + 1)

(* --- Disk inodes --- *)

let inode_loc ino = (inode_table_start + (ino / inodes_per_block), ino mod inodes_per_block * inode_size)

let di_read ino field =
  let blk, base = inode_loc ino in
  read_u32_at blk (base + field)

let di_write ino field v =
  let blk, base = inode_loc ino in
  write_u32_at blk (base + field) v

let di_metadata_block ino = fst (inode_loc ino)

(* Map a file block index to a device block, optionally allocating.

   Freshly allocated blocks are zeroed: a reused block still carries its
   previous life's content (in the page cache or on disk), and a mapping
   block consulted slot-by-slot would otherwise resurrect stale pointers
   after truncate freed and recycled it. *)
let zeroes = Bytes.make block_size '\000'

let bmap ino fblock ~alloc =
  if fblock < 0 || fblock >= max_file_blocks then
    Ostd.Panic.panicf "ext2: file block %d beyond maximum" fblock;
  let get_or_alloc ?(map = false) read_slot write_slot =
    let cur = read_slot () in
    if cur <> 0 then Some cur
    else if not alloc then None
    else begin
      let b = alloc_block () in
      if map then Jbd.touch b;
      Block.write_to_block b ~off:0 ~buf:zeroes ~pos:0 ~len:block_size;
      write_slot b;
      Some b
    end
  in
  if fblock < ndirect then
    get_or_alloc
      (fun () -> di_read ino (di_direct + (4 * fblock)))
      (fun b -> di_write ino (di_direct + (4 * fblock)) b)
  else if fblock < ndirect + ptrs_per_block then begin
    let idx = fblock - ndirect in
    match
      get_or_alloc ~map:true
        (fun () -> di_read ino di_indirect)
        (fun b -> di_write ino di_indirect b)
    with
    | None -> None
    | Some ind ->
      get_or_alloc (fun () -> read_u32_at ind (4 * idx)) (fun b -> write_u32_at ind (4 * idx) b)
  end
  else begin
    let idx = fblock - ndirect - ptrs_per_block in
    let hi = idx / ptrs_per_block and lo = idx mod ptrs_per_block in
    match
      get_or_alloc ~map:true
        (fun () -> di_read ino di_dindirect)
        (fun b -> di_write ino di_dindirect b)
    with
    | None -> None
    | Some dind -> (
      match
        get_or_alloc ~map:true
          (fun () -> read_u32_at dind (4 * hi))
          (fun b -> write_u32_at dind (4 * hi) b)
      with
      | None -> None
      | Some ind ->
        get_or_alloc (fun () -> read_u32_at ind (4 * lo)) (fun b -> write_u32_at ind (4 * lo) b))
  end

(* All device blocks a file currently uses (data + mapping metadata). *)
let file_blocks ino =
  let out = ref [ di_metadata_block ino; sb_block; block_bitmap; inode_bitmap ] in
  let size = di_read ino di_size in
  let nblocks = (size + block_size - 1) / block_size in
  for fb = 0 to nblocks - 1 do
    match bmap ino fb ~alloc:false with
    | Some b -> out := b :: !out
    | None -> ()
  done;
  if di_read ino di_indirect <> 0 then out := di_read ino di_indirect :: !out;
  let dind = di_read ino di_dindirect in
  if dind <> 0 then begin
    out := dind :: !out;
    for hi = 0 to ptrs_per_block - 1 do
      let ind = read_u32_at dind (4 * hi) in
      if ind <> 0 then out := ind :: !out
    done
  end;
  !out

(* --- Sequential-stream detection and readahead ---

   Per-inode window state machine: [next_fb] is the file block a
   strictly sequential reader would demand next, [window] the current
   readahead size in blocks. A demand read starting at [next_fb] is
   sequential — the window doubles (1 -> 32) and that many blocks past
   the demanded range are prefetched as one batch. Any other access
   pattern collapses the window back to 1 (random reads never pay for
   speculation). The table is forgotten on mkfs/mount. *)

let ra_max_window = 32

type ra_state = { mutable next_fb : int; mutable window : int }

let ra_table : (int, ra_state) Hashtbl.t = Hashtbl.create 64

let ra_reset () = Hashtbl.reset ra_table

(* Device blocks backing file blocks [first, stop) — holes skipped. *)
let mapped_range ino ~first ~stop =
  let blocks = ref [] in
  for fb = first to stop - 1 do
    match bmap ino fb ~alloc:false with
    | Some b -> blocks := b :: !blocks
    | None -> ()
  done;
  !blocks

let readahead ino ~first_fb ~nblocks =
  if (Sim.Profile.get ()).Sim.Profile.blk_readahead then begin
    let st =
      match Hashtbl.find_opt ra_table ino with
      | Some st -> st
      | None ->
        let st = { next_fb = 0; window = 1 } in
        Hashtbl.add ra_table ino st;
        st
    in
    let sequential = first_fb = st.next_fb in
    if sequential then st.window <- min ra_max_window (max 2 (st.window * 2))
    else st.window <- 1;
    st.next_fb <- first_fb + nblocks;
    if sequential && st.window > 1 then begin
      let size = di_read ino di_size in
      let file_nb = (size + block_size - 1) / block_size in
      let start = first_fb + nblocks in
      let stop = min file_nb (start + st.window) in
      if stop > start then Block.prefetch_blocks (mapped_range ino ~first:start ~stop)
    end
  end

(* --- File data I/O over the buffer cache --- *)

let data_read ino ~pos ~buf ~boff ~len =
  let size = di_read ino di_size in
  if pos >= size then 0
  else begin
    let len = min len (size - pos) in
    let first_fb = pos / block_size in
    let last_fb = (pos + len - 1) / block_size in
    (* Plug: a demand read spanning several blocks fetches its misses as
       one merged chain instead of one synchronous bio per block... *)
    if last_fb > first_fb then
      Block.prefetch_blocks ~mark:false (mapped_range ino ~first:first_fb ~stop:(last_fb + 1));
    (* ...and a sequential stream speculates past it. *)
    readahead ino ~first_fb ~nblocks:(last_fb - first_fb + 1);
    let moved = ref 0 in
    while !moved < len do
      let p = pos + !moved in
      let fb = p / block_size and off = p mod block_size in
      let chunk = min (len - !moved) (block_size - off) in
      (match bmap ino fb ~alloc:false with
      | Some b -> Block.read_from_block b ~off ~buf ~pos:(boff + !moved) ~len:chunk
      | None ->
        Sim.Cost.charge_zero_fill chunk;
        Bytes.fill buf (boff + !moved) chunk '\000');
      moved := !moved + chunk
    done;
    len
  end

(* [meta] marks content that is metadata living in file data blocks
   (directory entries, symlink targets) — always journaled. Ordinary
   file data is journaled only in data=journal mode. *)
let data_write ?(meta = false) ino ~pos ~buf ~boff ~len =
  let journal = meta || Jbd.journals_data () in
  let moved = ref 0 in
  while !moved < len do
    let p = pos + !moved in
    let fb = p / block_size and off = p mod block_size in
    let chunk = min (len - !moved) (block_size - off) in
    (match bmap ino fb ~alloc:true with
    | Some b ->
      if journal then Jbd.touch b;
      Block.write_to_block b ~off ~buf ~pos:(boff + !moved) ~len:chunk
    | None -> Ostd.Panic.panic "ext2: allocation failed during write");
    moved := !moved + chunk
  done;
  let size = di_read ino di_size in
  if pos + len > size then di_write ino di_size (pos + len);
  len

(* --- Directories --- *)

(* Entry: [ino u32][len u16][name]. A whole directory fits its file data. *)
let dir_entries ino =
  let size = di_read ino di_size in
  let buf = Bytes.create size in
  ignore (data_read ino ~pos:0 ~buf ~boff:0 ~len:size);
  let rec parse pos acc =
    if pos + 6 > size then List.rev acc
    else begin
      let e_ino = Int32.to_int (Bytes.get_int32_le buf pos) land 0xffffffff in
      let nlen = Bytes.get_uint16_le buf (pos + 4) in
      let name = Bytes.sub_string buf (pos + 6) nlen in
      parse (pos + 6 + nlen) ((name, e_ino) :: acc)
    end
  in
  parse 0 []

let dir_write_entries ino entries =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, e_ino) ->
      let quad = Bytes.create 6 in
      Bytes.set_int32_le quad 0 (Int32.of_int e_ino);
      Bytes.set_uint16_le quad 4 (String.length name);
      Buffer.add_bytes b quad;
      Buffer.add_string b name)
    entries;
  let data = Buffer.to_bytes b in
  di_write ino di_size 0;
  ignore (data_write ~meta:true ino ~pos:0 ~buf:data ~boff:0 ~len:(Bytes.length data));
  di_write ino di_size (Bytes.length data)

(* --- VFS glue --- *)

type Vfs.priv += E2 of int (* disk inode number *)

let dino_of i =
  match i.Vfs.priv with
  | E2 n -> n
  | _ -> Ostd.Panic.panic "ext2: foreign inode"

let icache : (int, Vfs.inode) Hashtbl.t = Hashtbl.create 256

let rec vnode_of ino =
  match Hashtbl.find_opt icache ino with
  | Some i -> i
  | None ->
    let mode_bits = di_read ino di_mode in
    let i =
      Vfs.make_inode ~fsname:"ext2" ~kind:(kind_of_bits mode_bits)
        ~mode:(mode_bits land 0xFFF) ~ops ()
    in
    i.Vfs.priv <- E2 ino;
    i.Vfs.size <- di_read ino di_size;
    i.Vfs.nlink <- di_read ino di_nlink;
    Hashtbl.replace icache ino i;
    i

and new_disk_inode kind ~mode =
  let ino = alloc_ino () in
  di_write ino di_mode (kind_bits kind lor (mode land 0xFFF));
  di_write ino di_size 0;
  di_write ino di_nlink 1;
  for k = 0 to ndirect - 1 do
    di_write ino (di_direct + (4 * k)) 0
  done;
  di_write ino di_indirect 0;
  di_write ino di_dindirect 0;
  ino

and ops =
  {
    (* kprof: the hot vnode operations fold their cycles under "ext2". *)
    lookup =
      (fun dir name ->
        Sim.Prof.scope "ext2" (fun () ->
            let dino = dino_of dir in
            match List.assoc_opt name (dir_entries dino) with
            | Some e_ino -> Some (vnode_of e_ino)
            | None -> None));
    create =
      (fun dir name kind ~mode ->
        Sim.Prof.scope "ext2" (fun () ->
            Jbd.with_handle (fun () ->
                let dino = dino_of dir in
                let entries = dir_entries dino in
                if List.mem_assoc name entries then Error Errno.eexist
                else begin
                  let ino = new_disk_inode kind ~mode in
                  dir_write_entries dino (entries @ [ (name, ino) ]);
                  dir.Vfs.size <- di_read dino di_size;
                  Vfs.touch_mtime dir;
                  Ok (vnode_of ino)
                end)));
    unlink =
      (fun dir name ->
        Jbd.with_handle (fun () ->
            let dino = dino_of dir in
            let entries = dir_entries dino in
            match List.assoc_opt name entries with
            | None -> Error Errno.enoent
            | Some e_ino ->
              let child = vnode_of e_ino in
              if child.Vfs.kind = Vfs.Dir && dir_entries e_ino <> [] then
                Error Errno.enotempty
              else begin
                dir_write_entries dino (List.remove_assoc name entries);
                dir.Vfs.size <- di_read dino di_size;
                let nlink = di_read e_ino di_nlink - 1 in
                di_write e_ino di_nlink nlink;
                child.Vfs.nlink <- nlink;
                if nlink = 0 then begin
                  (* Release data blocks. *)
                  List.iter
                    (fun b -> if b >= first_data_block then free_block b)
                    (file_blocks e_ino);
                  free_ino e_ino;
                  Hashtbl.remove icache e_ino
                end;
                Vfs.dcache_invalidate dir name;
                Vfs.touch_mtime dir;
                Ok ()
              end));
    readdir =
      (fun dir ->
        List.map (fun (name, e_ino) -> (name, vnode_of e_ino)) (dir_entries (dino_of dir)));
    read =
      (fun f ~pos ~buf ~boff ~len ->
        if f.Vfs.kind = Vfs.Dir then Error Errno.eisdir
        else
          Sim.Prof.scope "ext2" (fun () ->
              Ok (data_read (dino_of f) ~pos ~buf ~boff ~len)));
    write =
      (fun f ~pos ~buf ~boff ~len ->
        if f.Vfs.kind = Vfs.Dir then Error Errno.eisdir
        else
          Sim.Prof.scope "ext2" (fun () ->
              Jbd.with_handle (fun () ->
                  let n = data_write (dino_of f) ~pos ~buf ~boff ~len in
                  f.Vfs.size <- di_read (dino_of f) di_size;
                  Vfs.touch_mtime f;
                  Ok n)));
    truncate =
      (fun f n ->
        Jbd.with_handle (fun () ->
            let ino = dino_of f in
            let old_size = di_read ino di_size in
            if n < old_size then begin
              (* Free whole blocks beyond the new size, clearing every
                 mapping slot — direct, indirect, and double-indirect —
                 so no dangling pointer survives into a reused block. *)
              let keep = (n + block_size - 1) / block_size in
              let total = (old_size + block_size - 1) / block_size in
              for fb = keep to total - 1 do
                match bmap ino fb ~alloc:false with
                | Some b when b >= first_data_block ->
                  free_block b;
                  if fb < ndirect then di_write ino (di_direct + (4 * fb)) 0
                  else if fb < ndirect + ptrs_per_block then begin
                    let ind = di_read ino di_indirect in
                    if ind <> 0 then write_u32_at ind (4 * (fb - ndirect)) 0
                  end
                  else begin
                    let idx = fb - ndirect - ptrs_per_block in
                    let hi = idx / ptrs_per_block and lo = idx mod ptrs_per_block in
                    let dind = di_read ino di_dindirect in
                    if dind <> 0 then begin
                      let ind = read_u32_at dind (4 * hi) in
                      if ind <> 0 then write_u32_at ind (4 * lo) 0
                    end
                  end
                | Some _ | None -> ()
              done;
              (* Indirect chain blocks whose whole range is gone. *)
              let ind = di_read ino di_indirect in
              if ind <> 0 && keep <= ndirect then begin
                free_block ind;
                di_write ino di_indirect 0
              end;
              let dind = di_read ino di_dindirect in
              if dind <> 0 then begin
                for hi = 0 to ptrs_per_block - 1 do
                  let ind = read_u32_at dind (4 * hi) in
                  if ind <> 0 && keep <= ndirect + ptrs_per_block + (hi * ptrs_per_block)
                  then begin
                    free_block ind;
                    write_u32_at dind (4 * hi) 0
                  end
                done;
                if keep <= ndirect + ptrs_per_block then begin
                  free_block dind;
                  di_write ino di_dindirect 0
                end
              end
            end
            else if n > old_size then begin
              let zero = Bytes.make (min block_size (n - old_size)) '\000' in
              let pos = ref old_size in
              while !pos < n do
                let chunk = min (Bytes.length zero) (n - !pos) in
                ignore (data_write ino ~pos:!pos ~buf:zero ~boff:0 ~len:chunk);
                pos := !pos + chunk
              done
            end;
            di_write ino di_size n;
            f.Vfs.size <- n;
            Vfs.touch_mtime f;
            Ok ()));
    fsync =
      (fun f ->
        let ino = dino_of f in
        if Jbd.is_enabled () then
          (* Ordered mode: the commit itself writes all dirty data back
             before the metadata transaction goes behind its barriers. *)
          Jbd.commit ()
        else Block.sync_blocks (file_blocks ino));
    rename =
      (fun src_dir src_name dst_dir dst_name ->
        Jbd.with_handle (fun () ->
            let sdino = dino_of src_dir and ddino = dino_of dst_dir in
            let sentries = dir_entries sdino in
            match List.assoc_opt src_name sentries with
            | None -> Error Errno.enoent
            | Some e_ino -> (
              let dentries = dir_entries ddino in
              let replaced =
                match List.assoc_opt dst_name dentries with
                | Some old_ino when old_ino <> e_ino -> Some old_ino
                | Some _ | None -> None
              in
              match replaced with
              | Some old_ino
                when (vnode_of old_ino).Vfs.kind = Vfs.Dir && dir_entries old_ino <> [] ->
                Error Errno.enotempty
              | _ ->
                dir_write_entries sdino (List.remove_assoc src_name sentries);
                let dentries = dir_entries ddino in
                dir_write_entries ddino
                  ((dst_name, e_ino) :: List.remove_assoc dst_name dentries);
                (* The replaced inode lost its last (or one) name: drop
                   its link count and reclaim it like unlink would. *)
                (match replaced with
                | None -> ()
                | Some old_ino ->
                  let child = vnode_of old_ino in
                  let nlink = di_read old_ino di_nlink - 1 in
                  di_write old_ino di_nlink nlink;
                  child.Vfs.nlink <- nlink;
                  if nlink = 0 then begin
                    List.iter
                      (fun b -> if b >= first_data_block then free_block b)
                      (file_blocks old_ino);
                    free_ino old_ino;
                    Hashtbl.remove icache old_ino
                  end);
                Vfs.dcache_invalidate src_dir src_name;
                Vfs.dcache_invalidate dst_dir dst_name;
                Ok ())));
    link =
      (fun dir name target ->
        Jbd.with_handle (fun () ->
            let dino = dino_of dir in
            let entries = dir_entries dino in
            if List.mem_assoc name entries then Error Errno.eexist
            else begin
              let t_ino = dino_of target in
              dir_write_entries dino (entries @ [ (name, t_ino) ]);
              let nl = di_read t_ino di_nlink + 1 in
              di_write t_ino di_nlink nl;
              target.Vfs.nlink <- nl;
              Ok ()
            end));
    symlink_target =
      (fun i ->
        if i.Vfs.kind <> Vfs.Lnk then None
        else begin
          let ino = dino_of i in
          let size = di_read ino di_size in
          let buf = Bytes.create size in
          ignore (data_read ino ~pos:0 ~buf ~boff:0 ~len:size);
          Some (Bytes.to_string buf)
        end);
    set_symlink =
      (fun i target ->
        Jbd.with_handle (fun () ->
            let ino = dino_of i in
            let b = Bytes.of_string target in
            ignore (data_write ~meta:true ino ~pos:0 ~buf:b ~boff:0 ~len:(Bytes.length b));
            di_write ino di_size (Bytes.length b);
            i.Vfs.size <- Bytes.length b;
            Ok ()));
  }

let journaling_wanted () =
  let p = Sim.Profile.get () in
  p.Sim.Profile.ext2_journal

let mkfs () =
  Hashtbl.reset icache;
  ra_reset ();
  alloc_hint := first_data_block;
  (* mkfs writes everything directly; the journal covers mounted
     operation, not format time. *)
  Jbd.disable_journal ();
  (* Superblock. *)
  Block.zero_block sb_block;
  write_u32_at sb_block 0 magic;
  write_u32_at sb_block 4 (device_blocks ());
  write_u32_at sb_block 8 ninodes;
  write_u32_at sb_block 12 (device_blocks () - first_data_block);
  write_u32_at sb_block 16 (ninodes - root_ino - 1);
  (* Bitmaps: mark metadata (journal area included) + reserved inodes
     used. *)
  Block.zero_block block_bitmap;
  Block.zero_block inode_bitmap;
  for b = 0 to first_data_block - 1 do
    bit_set block_bitmap b true
  done;
  for i = 0 to root_ino do
    bit_set inode_bitmap i true
  done;
  for b = 0 to inode_table_blocks - 1 do
    Block.zero_block (inode_table_start + b)
  done;
  (* Root directory. *)
  di_write root_ino di_mode (kind_bits Vfs.Dir lor 0o755);
  di_write root_ino di_size 0;
  di_write root_ino di_nlink 2;
  (if journaling_wanted () then begin
     Jbd.configure ~start:journal_start ~blocks:journal_blocks
       ~data:(Sim.Profile.get ()).Sim.Profile.ext2_journal_data;
     Jbd.format ();
     Jbd.disable_journal ()
   end);
  match Block.sync () with
  | Ok () -> ()
  | Error e -> Ostd.Panic.panicf "ext2: mkfs could not reach the device (errno %d)" e

let mount () =
  Hashtbl.reset icache;
  ra_reset ();
  alloc_hint := first_data_block;
  if sb_magic () <> magic then Ostd.Panic.panic "ext2: bad magic (not formatted?)";
  if journaling_wanted () then begin
    Jbd.configure ~start:journal_start ~blocks:journal_blocks
      ~data:(Sim.Profile.get ()).Sim.Profile.ext2_journal_data;
    (* Recover: complete transactions are applied, torn ones discarded. *)
    Jbd.replay ()
  end
  else Jbd.disable_journal ();
  vnode_of root_ino

(* Filesystem-wide sync, the sync(2) back end: commit the running
   journal transaction, checkpoint it, then write back and flush
   everything else. Without a journal it degenerates to [Block.sync]. *)
let sync_fs () =
  if Jbd.is_enabled () then
    match Jbd.commit () with
    | Error _ as e -> e
    | Ok () -> (
      try
        Jbd.checkpoint ();
        Block.sync ()
      with Ostd.Panic.Service_failure { errno; _ } -> Error errno)
  else Block.sync ()
