(** x86-64 Linux syscall numbers and the ABI surface table.

    [registered] lists the full surface Asterinas advertises (the paper's
    "over 210 system calls"); [implemented] marks the subset this
    reproduction gives real semantics — everything else dispatches to an
    explicit ENOSYS handler so the table and dispatch path are exercised
    honestly. *)

val read : int
val write : int
val open_ : int
val close : int
val stat : int
val fstat : int
val lstat : int
val poll : int
val lseek : int
val mmap : int
val mprotect : int
val munmap : int
val brk : int
val ioctl : int
val pread64 : int
val pwrite64 : int
val readv : int
val writev : int
val access : int
val pipe : int
val sched_yield : int
val dup : int
val dup2 : int
val nanosleep : int
val getpid : int
val sendfile : int
val socket : int
val connect : int
val accept : int
val sendto : int
val recvfrom : int
val shutdown : int
val bind : int
val listen : int
val getsockname : int
val socketpair : int
val setsockopt : int
val getsockopt : int
val fork : int
val execve : int
val exit : int
val wait4 : int
val kill : int
val uname : int
val fcntl : int
val flock : int
val fsync : int
val fdatasync : int
val truncate : int
val ftruncate : int
val getdents : int
val getcwd : int
val chdir : int
val rename : int
val mkdir : int
val rmdir : int
val creat : int
val link : int
val unlink : int
val symlink : int
val readlink : int
val chmod : int
val chown : int
val umask : int
val gettimeofday : int
val getrlimit : int
val getrusage : int
val times : int
val getuid : int
val getgid : int
val geteuid : int
val getegid : int
val getppid : int
val setsid : int
val gettid : int
val time : int
val getdents64 : int
val clock_gettime : int
val clock_nanosleep : int
val exit_group : int
val openat : int
val mkdirat : int
val newfstatat : int
val unlinkat : int
val renameat : int
val epoll_wait : int
val epoll_ctl : int
val accept4 : int
val epoll_create1 : int
val pipe2 : int
val getrandom : int
val rt_sigaction : int
val rt_sigprocmask : int
val rt_sigpending : int
val mknod : int
val statfs : int
val fchdir : int
val sync : int
val dup3 : int

val span_begin : int
(** kspan request boundary: open a span ([cls_ptr], [name_ptr]) on the
    calling task; returns the span id. *)

val span_end : int
(** Seal the span whose id is arg0. *)

val probe_load : int
(** bpf(2)-lite: load a probe program from its text form. *)

val probe_read : int
(** bpf(2)-lite: read a loaded program's rendered map contents. *)

val name : int -> string
(** Symbolic name for a registered number; "sys_<n>" otherwise. *)

val scope_name : int -> string
(** Memoized kprof scope label, ["syscall.<name>"]; the dispatch hot
    path never allocates. *)

val registered : int list
(** Every syscall number in the advertised ABI surface. *)

val registered_count : int
