let page_size = Machine.Phys.page_size

(* The custom per-frame metadata of the paper's Frame<M>: page-cache
   synchronisation state, attached to the frame itself. *)
type pstate = { mutable dirty : bool; mutable uptodate : bool }

type Ostd.Frame.meta += Page_state of pstate

type t = { frames : (int, Ostd.Frame.t) Hashtbl.t; mutable destroyed : bool }

let create () = { frames = Hashtbl.create 16; destroyed = false }

let alive t = if t.destroyed then Ostd.Panic.panic "Page_cache: use after destroy"

let destroy t =
  if not t.destroyed then begin
    Hashtbl.iter (fun _ f -> Ostd.Frame.drop f) t.frames;
    Hashtbl.reset t.frames;
    t.destroyed <- true
  end

let pages t = Hashtbl.length t.frames

let state_of frame =
  match Ostd.Frame.get_meta frame ~page:0 with
  | Some (Page_state s) -> s
  | _ -> Ostd.Panic.panic "Page_cache: frame without page state"

let frame_for t idx =
  alive t;
  match Hashtbl.find_opt t.frames idx with
  | Some f -> f
  | None ->
    let f = Ostd.Frame.alloc ~untyped:true () in
    Ostd.Frame.set_meta f ~page:0 (Page_state { dirty = false; uptodate = true });
    Hashtbl.replace t.frames idx f;
    f

let iter_range pos len f =
  let moved = ref 0 in
  while !moved < len do
    let p = pos + !moved in
    let idx = p / page_size and off = p mod page_size in
    let chunk = min (len - !moved) (page_size - off) in
    f idx off !moved chunk;
    moved := !moved + chunk
  done

let read t ~pos ~buf ~boff ~len =
  alive t;
  Sim.Cost.charge_memcpy len;
  iter_range pos len (fun idx off moved chunk ->
      match Hashtbl.find_opt t.frames idx with
      | Some frame -> Ostd.Untyped.read_bytes frame ~off ~buf ~pos:(boff + moved) ~len:chunk
      | None ->
        (* A hole still costs the memset that materialises its zeroes. *)
        Sim.Cost.charge_zero_fill chunk;
        Bytes.fill buf (boff + moved) chunk '\000')

(* Zero-copy view: the bytes are produced without a copy charge (the
   device will read them straight out of the frames via DMA) and every
   cached frame touched is cloned — a refcounted pin the caller must
   eventually drop. Holes still pay the memset that materialises their
   zeroes and pin nothing. *)
let read_view t ~pos ~len =
  alive t;
  let buf = Bytes.create len in
  let pins = ref [] in
  iter_range pos len (fun idx off moved chunk ->
      match Hashtbl.find_opt t.frames idx with
      | Some frame ->
        Ostd.Frame.peek frame ~off ~buf ~pos:moved ~len:chunk;
        Sim.Stats.incr "net.zc_pin";
        pins := Ostd.Frame.clone frame :: !pins
      | None ->
        Sim.Cost.charge_zero_fill chunk;
        Bytes.fill buf moved chunk '\000');
  (buf, !pins)

let write t ~pos ~buf ~boff ~len =
  alive t;
  Sim.Cost.charge_memcpy len;
  iter_range pos len (fun idx off moved chunk ->
      let fresh = not (Hashtbl.mem t.frames idx) in
      if fresh then Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.fs_new_page;
      let frame = frame_for t idx in
      Ostd.Untyped.write_bytes frame ~off ~buf ~pos:(boff + moved) ~len:chunk;
      (state_of frame).dirty <- true)

let truncate t n =
  alive t;
  let keep = (n + page_size - 1) / page_size in
  let victims = Hashtbl.fold (fun idx f acc -> if idx >= keep then (idx, f) :: acc else acc) t.frames [] in
  (* Dropping a page is not free: each victim pays the removal cost
     (unmap bookkeeping, free-list return). *)
  Sim.Cost.charge_page_drop (List.length victims);
  List.iter
    (fun (idx, f) ->
      Ostd.Frame.drop f;
      Hashtbl.remove t.frames idx)
    victims;
  (* Zero the tail of the last kept page so re-extension reads zeroes. *)
  if n mod page_size <> 0 then
    match Hashtbl.find_opt t.frames (n / page_size) with
    | Some frame ->
      Ostd.Untyped.fill frame ~off:(n mod page_size) ~len:(page_size - (n mod page_size)) '\000'
    | None -> ()

let dirty_pages t =
  Hashtbl.fold (fun _ f acc -> if (state_of f).dirty then acc + 1 else acc) t.frames 0

let clean_all t =
  Hashtbl.fold
    (fun _ f acc ->
      let s = state_of f in
      if s.dirty then begin
        s.dirty <- false;
        acc + 1
      end
      else acc)
    t.frames 0

let page_state t idx =
  match Hashtbl.find_opt t.frames idx with
  | Some f ->
    let s = state_of f in
    Some (s.dirty, s.uptodate)
  | None -> None
