(** Open file descriptions and per-process fd tables. *)

type sock_kind = Inet_stream | Inet_dgram | Unix_stream

type sock_state =
  | S_unbound
  | S_tcp_listener of Tcp.listener
  | S_tcp_conn of Tcp.conn
  | S_udp of Udp.socket
  | S_unix_listener of Unix_sock.listener
  | S_unix_conn of Unix_sock.endpoint

type sock = {
  kind : sock_kind;
  mutable st : sock_state;
  mutable bport : int option;  (* bound inet port *)
  mutable upath : string option;  (* bound unix path *)
}

type desc =
  | Inode_file of Vfs.inode
  | Pipe_read of Pipe.t
  | Pipe_write of Pipe.t
  | Socket of sock
  | Epoll of Epoll.t

type t = {
  mutable desc : desc;
  mutable pos : int;
  mutable flags : int;
  mutable refs : int;
  mutable wb_sample : int;
      (** errseq_t sample taken at open: fsync reports writeback errors
          newer than this, independently of other observers *)
}

val o_nonblock : int
val o_append : int
val o_creat : int
val o_trunc : int
val o_excl : int
val o_directory : int

val make : desc -> flags:int -> t

val tcp_conn_of : t -> Tcp.conn option
(** The established TCP connection behind a socket descriptor, if any —
    the zero-copy sendfile path needs the connection itself to attach
    page-cache pins to the send. *)

val get : t -> unit
(** Increment the reference count (dup, fork). *)

val put : t -> unit
(** Decrement; the last reference releases the underlying object (pipe
    end close, socket close). *)

module Table : sig
  type file = t

  type t

  val create : unit -> t
  val clone : t -> t
  (** Share open files (fork): every file's refcount rises. *)

  val lookup : t -> int -> file option
  val install : t -> file -> int
  (** Lowest free descriptor. Charges the fd-lookup cost on use. *)

  val install_at : t -> int -> file -> unit
  (** dup2: closes whatever was there. *)

  val close : t -> int -> (unit, int) result
  val close_all : t -> unit
  val count : t -> int

  val fold : t -> (int -> file -> 'a -> 'a) -> 'a -> 'a
  (** Fold over (fd, file) pairs, cost-free (procfs fdinfo rendering). *)
end
