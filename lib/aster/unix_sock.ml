(* A unidirectional ring shared by a connected pair; an endpoint reads
   one ring and writes the other. *)
type ring = {
  buf : Bytes.t;
  mutable head : int;
  mutable count : int;
  mutable closed : bool;
  rd_wq : Ostd.Wait_queue.t;
  wr_wq : Ostd.Wait_queue.t;
  (* Readiness back-refs: the pollable of the endpoint that reads this
     ring, and of the one that writes it. Set once at socketpair time
     (the rings exist before the endpoints that share them). *)
  mutable rd_pb : Pollable.t option;
  mutable wr_pb : Pollable.t option;
}

type endpoint = { rx : ring; tx : ring; ep_pollable : Pollable.t }

let make_ring () =
  let cap = (Sim.Profile.get ()).Sim.Profile.unix_buffer in
  {
    buf = Bytes.create cap;
    head = 0;
    count = 0;
    closed = false;
    rd_wq = Ostd.Wait_queue.create ();
    wr_wq = Ostd.Wait_queue.create ();
    rd_pb = None;
    wr_pb = None;
  }

let publish_opt pb edge = match pb with Some p -> Pollable.publish p edge | None -> ()

(* Readable on buffered bytes or EOF; HUP once either side closed
   (close marks both rings); writable while open with space — the
   Linux AF_UNIX poll contract. *)
let endpoint_level ep () =
  (if ep.rx.count > 0 || ep.rx.closed then Pollable.pollin else 0)
  lor (if ep.rx.closed || ep.tx.closed then Pollable.pollhup lor Pollable.pollrdhup else 0)
  lor
  if (not ep.tx.closed) && ep.tx.count < Bytes.length ep.tx.buf then Pollable.pollout else 0

let socketpair () =
  let a2b = make_ring () and b2a = make_ring () in
  let a = { rx = b2a; tx = a2b; ep_pollable = Pollable.create (fun () -> 0) } in
  let b = { rx = a2b; tx = b2a; ep_pollable = Pollable.create (fun () -> 0) } in
  Pollable.set_level a.ep_pollable (endpoint_level a);
  Pollable.set_level b.ep_pollable (endpoint_level b);
  a2b.rd_pb <- Some b.ep_pollable;
  a2b.wr_pb <- Some a.ep_pollable;
  b2a.rd_pb <- Some a.ep_pollable;
  b2a.wr_pb <- Some b.ep_pollable;
  (a, b)

let pollable ep = ep.ep_pollable

let cap r = Bytes.length r.buf

let push r src pos len =
  let n = min len (cap r - r.count) in
  let tail = (r.head + r.count) mod cap r in
  let first = min n (cap r - tail) in
  Bytes.blit src pos r.buf tail first;
  Bytes.blit src (pos + first) r.buf 0 (n - first);
  r.count <- r.count + n;
  n

let pop r dst pos len =
  let n = min len r.count in
  let first = min n (cap r - r.head) in
  Bytes.blit r.buf r.head dst pos first;
  Bytes.blit r.buf 0 dst (pos + first) (n - first);
  r.head <- (r.head + n) mod cap r;
  r.count <- r.count - n;
  n

let charge_op len =
  Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.unix_op;
  (* skb-based implementations copy user->skb and skb->user; the ring
     design moves bytes once (the syscall layer's user copy). *)
  if (Sim.Profile.get ()).Sim.Profile.unix_double_copy then Sim.Cost.charge_user_copy len

let send ?(nonblock = false) ep ~buf ~pos ~len =
  let r = ep.tx in
  if r.closed then Error Errno.epipe
  else if nonblock && r.count >= cap r then Error Errno.eagain
  else begin
    let written = ref 0 in
    let err = ref None in
    while !written < len && !err = None && not (nonblock && r.count >= cap r) do
      Ostd.Wait_queue.sleep_until r.wr_wq (fun () -> r.count < cap r || r.closed);
      if r.closed then err := Some Errno.epipe
      else begin
        let n = push r buf (pos + !written) (len - !written) in
        charge_op n;
        written := !written + n;
        ignore (Ostd.Wait_queue.wake_one r.rd_wq);
        publish_opt r.rd_pb Pollable.pollin
      end
    done;
    match !err with Some e when !written = 0 -> Error e | _ -> Ok !written
  end

let recv ?(nonblock = false) ep ~buf ~pos ~len =
  let r = ep.rx in
  if nonblock && r.count = 0 && not r.closed then Error Errno.eagain
  else begin
    Ostd.Wait_queue.sleep_until r.rd_wq (fun () -> r.count > 0 || r.closed);
    if r.count = 0 then Ok 0
    else begin
      let n = pop r buf pos len in
      charge_op n;
      ignore (Ostd.Wait_queue.wake_one r.wr_wq);
      publish_opt r.wr_pb Pollable.pollout;
      Ok n
    end
  end

let close ep =
  ep.tx.closed <- true;
  ep.rx.closed <- true;
  ignore (Ostd.Wait_queue.wake_all ep.tx.rd_wq);
  ignore (Ostd.Wait_queue.wake_all ep.tx.wr_wq);
  ignore (Ostd.Wait_queue.wake_all ep.rx.rd_wq);
  ignore (Ostd.Wait_queue.wake_all ep.rx.wr_wq);
  (* Both endpoints see the edge: the peer's reader gets EOF/HUP, the
     peer's writer gets its EPIPE-to-come, and our own registrations
     (if any survive the fd close) observe the same. *)
  let edge = Pollable.pollin lor Pollable.pollhup lor Pollable.pollrdhup in
  publish_opt ep.tx.rd_pb edge;
  publish_opt ep.tx.wr_pb edge;
  publish_opt ep.rx.rd_pb edge;
  publish_opt ep.rx.wr_pb edge

let readable ep = ep.rx.count > 0 || ep.rx.closed

(* --- Listener namespace --- *)

type listener = {
  path : string;
  backlog : endpoint Queue.t;
  wq : Ostd.Wait_queue.t;
  mutable open_ : bool;
  l_pollable : Pollable.t;
}

let namespace : (string, listener) Hashtbl.t = Hashtbl.create 16

let reset_namespace () = Hashtbl.reset namespace

let listen ~path =
  if Hashtbl.mem namespace path then Error Errno.eaddrinuse
  else begin
    let l =
      {
        path;
        backlog = Queue.create ();
        wq = Ostd.Wait_queue.create ();
        open_ = true;
        l_pollable = Pollable.create (fun () -> 0);
      }
    in
    Pollable.set_level l.l_pollable (fun () ->
        if Queue.is_empty l.backlog then 0 else Pollable.pollin);
    Hashtbl.replace namespace path l;
    Ok l
  end

let listener_pollable l = l.l_pollable

let connect ~path =
  match Hashtbl.find_opt namespace path with
  | Some l when l.open_ ->
    let client, server = socketpair () in
    Queue.push server l.backlog;
    ignore (Ostd.Wait_queue.wake_one l.wq);
    Pollable.publish l.l_pollable Pollable.pollin;
    Ok client
  | Some _ | None -> Error Errno.econnrefused

let accept l =
  Ostd.Wait_queue.sleep_until l.wq (fun () -> not (Queue.is_empty l.backlog));
  Queue.pop l.backlog

let accept_opt l = if Queue.is_empty l.backlog then None else Some (Queue.pop l.backlog)

let close_listener l =
  l.open_ <- false;
  Hashtbl.remove namespace l.path
