(* The readiness seam: every waitable kernel object (pipe end, TCP
   conn/listener, UDP socket, unix-socket endpoint) owns one of these.
   A pollable couples a *level* function — "which poll bits are true
   right now" — with an edge-publication channel that epoll instances
   and blocked poll(2) callers subscribe to.

   Two invariants the whole readiness layer leans on:

   - No lost wakeups: every state transition that can turn a poll bit
     on (enqueue, dequeue freeing space, accept-queue push, EOF,
     error) calls [publish] *after* the state change, so a subscriber
     that checked the level before the edge either saw the bit already
     set or gets the notification.  Subscription and the level
     re-check happen without yielding (the sim is cooperative and
     single-CPU), so there is no window for an edge to slip between
     "checked: not ready" and "blocked".

   - Unobserved publication is free: [publish] with no watchers and no
     waiters charges zero virtual cycles and allocates no events, so
     blocking-only workloads (everything that existed before epoll)
     keep their committed timings byte-for-byte. Wake costs are
     charged by [Wait_queue.wake_*] only when a task is actually
     woken, exactly as the blocking paths already do. *)

(* poll(2)/epoll event bits — Linux values. POLLIN deliberately equals
   1 so legacy revents=1 assertions keep meaning "readable". *)
let pollin = 0x001
let pollpri = 0x002
let pollout = 0x004
let pollerr = 0x008
let pollhup = 0x010
let pollnval = 0x020
let pollrdhup = 0x2000

(* Internal edge bit (never reported to userspace): the object behind
   this pollable is going away. Linux's EPOLLFREE — epoll watchers that
   see it drop their registration, which is how closing an fd removes
   it from every epoll interest list without an explicit DEL. *)
let pollfree = 1 lsl 29

type watcher = { notify : int -> unit; mutable active : bool }

type t = {
  mutable level : unit -> int;  (* current readiness bits *)
  waiters : Ostd.Wait_queue.t;  (* poll(2)-style sleepers *)
  mutable watchers : watcher list;  (* epoll-style subscribers, attach order *)
}

let create level = { level; waiters = Ostd.Wait_queue.create (); watchers = [] }

(* Objects whose level closure must capture the owning record set it
   right after construction (the record can't reference itself while
   being built). *)
let set_level t f = t.level <- f

let level t = t.level ()

let attach t notify =
  let w = { notify; active = true } in
  t.watchers <- t.watchers @ [ w ];
  w

let detach t w =
  w.active <- false;
  t.watchers <- List.filter (fun x -> x != w) t.watchers

(* Publish an edge transition carrying the bits that just turned on.
   Watchers run synchronously (they only enqueue/flag — never block);
   the [active] guard covers watchers detached by an earlier watcher
   in the same publication. *)
let publish t edge =
  (match t.watchers with
  | [] -> ()
  | ws -> List.iter (fun w -> if w.active then w.notify edge) ws);
  ignore (Ostd.Wait_queue.wake_all t.waiters : int)

let waiters t = t.waiters

(* The owning object is being destroyed (last fd reference dropped).
   Notify watchers with [pollfree] so epoll registrations unhook
   themselves, then clear the list — nothing may publish through a
   freed pollable again. Unwatched objects pay nothing. *)
let free t =
  (match t.watchers with
  | [] -> ()
  | ws -> List.iter (fun w -> if w.active then w.notify pollfree) ws);
  t.watchers <- [];
  ignore (Ostd.Wait_queue.wake_all t.waiters : int)
