(* Hashed hierarchical timer wheel (Varghese & Lauck), lazily driven
   off the deterministic event heap.

   Why not just `Sim.Events.schedule_at` per timeout?  Because the
   dominant timer workload at connection scale is *churn*: every
   `epoll_wait`/`poll` deadline and socket timeout is armed and then
   cancelled moments later when readiness arrives first.  The event
   heap pays O(log n) per insert and leaks lazily-cancelled entries
   until their deadline drains; the wheel pays O(1) per arm/cancel and
   materialises at most ONE heap entry — armed at the exact earliest
   live deadline — no matter how many thousands of timers it holds.

   Layout: [levels] levels of [slots] slots; one tick is 2^[shift]
   cycles (~0.68 µs at 3000 cycles/µs), level l spans slots^(l+1)
   ticks, so the whole wheel covers ~32^6 ticks ≈ 12 virtual minutes —
   far beyond any simulated timeout (longer deadlines clamp into the
   top level and simply cascade more than once; still correct).

   Precision: timers remember their exact cycle deadline; slots only
   decide *placement*.  The wheel's single heap event is armed at the
   exact minimum live deadline, and a slot sweep fires only timers
   whose deadline has truly arrived — so callbacks run at precisely
   `deadline`, never rounded to a tick boundary.  Cancellation is
   lazy: the timer is flagged and skipped when its slot is swept. *)

let bits = 5
let slots = 1 lsl bits (* 32 *)
let levels = 6
let shift = 11 (* 2048 cycles per tick *)

type state = Armed | Fired | Cancelled

type timer = {
  deadline : int64; (* absolute cycles *)
  seq : int; (* arm order; tie-break for equal deadlines *)
  run : unit -> unit;
  mutable state : state;
}

type t = {
  wheel : timer list array array; (* wheel.(level).(slot), newest first *)
  occ : int array; (* per-level slot-occupancy bitmask *)
  mutable cur : int64; (* current tick (clock >> shift) *)
  mutable live : int;
  mutable seq : int;
  mutable ev : Sim.Events.handle option; (* the one heap entry *)
  mutable armed_at : int64; (* cycle the heap entry targets *)
}

let tick_of cycles = Int64.shift_right_logical cycles shift

let create () =
  {
    wheel = Array.init levels (fun _ -> Array.make slots []);
    occ = Array.make levels 0;
    cur = tick_of (Sim.Clock.now ());
    live = 0;
    seq = 0;
    ev = None;
    armed_at = -1L;
  }

let live t = t.live

(* Place a timer by its distance from the current tick: delta < 32^1
   goes to level 0, < 32^2 to level 1, ... The slot index is the
   timer's own tick sliced at that level, so a cascade can re-place it
   without recomputing anything. *)
let place t tm =
  let tick =
    let k = tick_of tm.deadline in
    if Int64.compare k t.cur < 0 then t.cur else k
  in
  let delta = Int64.to_int (Int64.sub tick t.cur) in
  let lvl =
    let rec go l span =
      if l >= levels - 1 || delta < span then l else go (l + 1) (span * slots)
    in
    go 0 slots
  in
  let idx = Int64.to_int (Int64.logand (Int64.shift_right_logical tick (bits * lvl)) 31L) in
  t.wheel.(lvl).(idx) <- tm :: t.wheel.(lvl).(idx);
  t.occ.(lvl) <- t.occ.(lvl) lor (1 lsl idx)

(* Pull every timer out of a higher-level slot and re-place it; by the
   time we cascade a slot, every armed timer in it re-places at a
   strictly lower level (its delta shrank below the slot's span). *)
let cascade t lvl idx =
  if t.occ.(lvl) land (1 lsl idx) <> 0 then begin
    let l = t.wheel.(lvl).(idx) in
    t.wheel.(lvl).(idx) <- [];
    t.occ.(lvl) <- t.occ.(lvl) land lnot (1 lsl idx);
    List.iter
      (fun tm ->
        if tm.state = Armed then begin
          Sim.Stats.incr "timer.cascaded";
          place t tm
        end)
      l
  end

(* At a wrap boundary (cur ≡ 0 mod 32^l), pull level l's current slot
   down — top level first so multi-level boundaries drain in one pass. *)
let do_cascades t =
  for lvl = levels - 1 downto 1 do
    let span_mask = Int64.of_int ((1 lsl (bits * lvl)) - 1) in
    if Int64.logand t.cur span_mask = 0L then
      cascade t lvl (Int64.to_int (Int64.logand (Int64.shift_right_logical t.cur (bits * lvl)) 31L))
  done

(* Fire (in deadline, then arm order) every timer in a level-0 slot
   whose deadline has arrived; keep the rest (future wraps of the same
   slot, or sub-tick remainders of the current tick). *)
let sweep_slot t ~now idx =
  if t.occ.(0) land (1 lsl idx) <> 0 then begin
    let due, keep =
      List.partition
        (fun tm -> tm.state = Armed && Int64.compare tm.deadline now <= 0)
        t.wheel.(0).(idx)
    in
    let keep = List.filter (fun tm -> tm.state = Armed) keep in
    t.wheel.(0).(idx) <- keep;
    if keep = [] then t.occ.(0) <- t.occ.(0) land lnot (1 lsl idx);
    let due =
      List.sort
        (fun a b ->
          match Int64.compare a.deadline b.deadline with 0 -> compare a.seq b.seq | c -> c)
        due
    in
    List.iter
      (fun tm ->
        tm.state <- Fired;
        t.live <- t.live - 1;
        Sim.Stats.incr "timer.fired";
        tm.run ())
      due
  end

let next_bit mask from =
  let rec go i = if i >= slots then None else if mask land (1 lsl i) <> 0 then Some i else go (i + 1) in
  go from

(* Walk the wheel forward to the current clock tick, cascading at
   boundaries and sweeping occupied level-0 slots as we pass them;
   empty stretches are skipped via the occupancy bitmask. *)
let advance t =
  let now = Sim.Clock.now () in
  let target = tick_of now in
  while Int64.compare t.cur target < 0 do
    let idx = Int64.to_int (Int64.logand t.cur 31L) in
    if idx = 0 then do_cascades t;
    sweep_slot t ~now idx;
    let wrap_base = Int64.sub t.cur (Int64.of_int idx) in
    let stop =
      match next_bit t.occ.(0) (idx + 1) with
      | Some j -> Int64.add wrap_base (Int64.of_int j)
      | None -> Int64.add wrap_base 32L
    in
    t.cur <- (if Int64.compare stop target < 0 then stop else target)
  done;
  (* Settle the tick we landed on: a boundary we stopped exactly at
     still needs its cascade, and sub-tick deadlines within the
     current tick fire here (idempotent — swept slots are empty). *)
  let idx = Int64.to_int (Int64.logand t.cur 31L) in
  if idx = 0 then do_cascades t;
  sweep_slot t ~now idx

(* Earliest live deadline, scanning only occupied slots. O(occupied
   slots + live timers) — called once per heap-event fire and on arms
   that beat the current wakeup, not per tick. *)
let min_deadline t =
  if t.live = 0 then None
  else begin
    let best = ref Int64.max_int in
    for lvl = 0 to levels - 1 do
      if t.occ.(lvl) <> 0 then
        for idx = 0 to slots - 1 do
          if t.occ.(lvl) land (1 lsl idx) <> 0 then
            List.iter
              (fun tm ->
                if tm.state = Armed && Int64.compare tm.deadline !best < 0 then best := tm.deadline)
              t.wheel.(lvl).(idx)
        done
    done;
    if Int64.compare !best Int64.max_int < 0 then Some !best else None
  end

(* Arm (or move) the single heap event so it fires at the exact
   earliest live deadline. Arming at a deadline sitting in a high
   level is still exact: [advance] cascades every boundary it crosses
   on the way, so the timer is at level 0 by the time cur reaches it. *)
let rec reprogram t =
  match min_deadline t with
  | None ->
    (match t.ev with Some e -> Sim.Events.cancel e | None -> ());
    t.ev <- None;
    t.armed_at <- -1L
  | Some dl ->
    if t.ev = None || Int64.compare t.armed_at dl <> 0 then begin
      (match t.ev with Some e -> Sim.Events.cancel e | None -> ());
      let now = Sim.Clock.now () in
      let at = if Int64.compare dl now < 0 then now else dl in
      t.armed_at <- dl;
      t.ev <-
        Some
          (Sim.Events.schedule_at at (fun () ->
               t.ev <- None;
               t.armed_at <- -1L;
               advance t;
               reprogram t))
    end

let arm t ~deadline run =
  let tm = { deadline; seq = t.seq; run; state = Armed } in
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  Sim.Stats.incr "timer.armed";
  Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.timer_program;
  place t tm;
  (* Already-due deadlines still go through the heap (schedule at
     `now`), so callbacks never run inside the caller's stack. *)
  if t.ev = None || Int64.compare deadline t.armed_at < 0 then reprogram t;
  tm

let arm_after t ~cycles run =
  let cycles = if cycles < 0 then 0 else cycles in
  arm t ~deadline:(Int64.add (Sim.Clock.now ()) (Int64.of_int cycles)) run

let cancel t tm =
  if tm.state = Armed then begin
    tm.state <- Cancelled;
    t.live <- t.live - 1;
    Sim.Stats.incr "timer.cancelled"
  end
  (* The slot entry and (possibly) the heap event drain lazily; a
     spurious wheel wakeup sweeps nothing and re-arms at the next live
     deadline. *)

(* The kernel-wide wheel instance; reset at boot so stale state never
   leaks across the many kernels a bench process boots in sequence
   (the heap entry itself dies with Board.reset's Events.clear). *)
let global : t option ref = ref None

let the () =
  match !global with
  | Some w -> w
  | None ->
    let w = create () in
    global := Some w;
    w

let reset_global () = global := None
