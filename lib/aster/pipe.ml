type t = {
  buf : Bytes.t;
  mutable head : int; (* next byte to read *)
  mutable count : int;
  mutable read_open : bool;
  mutable write_open : bool;
  readers : Ostd.Wait_queue.t;
  writers : Ostd.Wait_queue.t;
  (* Readiness seam: one pollable per end. The read end levels POLLIN
     on buffered bytes and POLLHUP on writer close (EOF); the write
     end levels POLLOUT on free space and POLLERR on reader close. *)
  rd_pollable : Pollable.t;
  wr_pollable : Pollable.t;
}

let create () =
  let cap = (Sim.Profile.get ()).Sim.Profile.pipe_buffer in
  let t =
    {
      buf = Bytes.create cap;
      head = 0;
      count = 0;
      read_open = true;
      write_open = true;
      readers = Ostd.Wait_queue.create ();
      writers = Ostd.Wait_queue.create ();
      rd_pollable = Pollable.create (fun () -> 0);
      wr_pollable = Pollable.create (fun () -> 0);
    }
  in
  Pollable.set_level t.rd_pollable (fun () ->
      (if t.count > 0 then Pollable.pollin else 0)
      lor if t.write_open then 0 else Pollable.pollhup);
  Pollable.set_level t.wr_pollable (fun () ->
      (if t.count < cap then Pollable.pollout else 0)
      lor if t.read_open then 0 else Pollable.pollerr);
  t

let capacity t = Bytes.length t.buf

let available t = t.count

let rd_pollable t = t.rd_pollable
let wr_pollable t = t.wr_pollable

let close_read t =
  t.read_open <- false;
  ignore (Ostd.Wait_queue.wake_all t.writers);
  Pollable.publish t.wr_pollable Pollable.pollerr

let close_write t =
  t.write_open <- false;
  ignore (Ostd.Wait_queue.wake_all t.readers);
  Pollable.publish t.rd_pollable (Pollable.pollin lor Pollable.pollhup)

let readable t = t.count > 0 || not t.write_open

let writable t = t.count < capacity t || not t.read_open

let pop t out pos len =
  let n = min len t.count in
  let cap = capacity t in
  let first = min n (cap - t.head) in
  Bytes.blit t.buf t.head out pos first;
  Bytes.blit t.buf 0 out (pos + first) (n - first);
  t.head <- (t.head + n) mod cap;
  t.count <- t.count - n;
  n

let push t src pos len =
  let cap = capacity t in
  let n = min len (cap - t.count) in
  let tail = (t.head + t.count) mod cap in
  let first = min n (cap - tail) in
  Bytes.blit src pos t.buf tail first;
  Bytes.blit src (pos + first) t.buf 0 (n - first);
  t.count <- t.count + n;
  n

let charge_op _len = Sim.Cost.charge (Sim.Cost.c ()).Sim.Profile.pipe_op

let read ?(nonblock = false) t ~buf ~pos ~len =
  if not t.read_open then Error Errno.ebadf
  else if nonblock && t.count = 0 && t.write_open then Error Errno.eagain
  else begin
    Ostd.Wait_queue.sleep_until t.readers (fun () -> t.count > 0 || not t.write_open);
    if t.count = 0 then Ok 0 (* writer closed *)
    else begin
      let n = pop t buf pos len in
      charge_op n;
      ignore (Ostd.Wait_queue.wake_one t.writers);
      Pollable.publish t.wr_pollable Pollable.pollout;
      Ok n
    end
  end

let write ?(nonblock = false) t ~buf ~pos ~len =
  if not t.write_open then Error Errno.ebadf
  else if nonblock then begin
    (* O_NONBLOCK: take what fits right now; full + reader alive is
       EAGAIN, reader gone is EPIPE. *)
    if not t.read_open then Error Errno.epipe
    else begin
      let n = push t buf pos len in
      if n = 0 && len > 0 then Error Errno.eagain
      else begin
        charge_op n;
        ignore (Ostd.Wait_queue.wake_one t.readers);
        Pollable.publish t.rd_pollable Pollable.pollin;
        Ok n
      end
    end
  end
  else begin
    let written = ref 0 in
    let result = ref (Ok 0) in
    (try
       while !written < len do
         Ostd.Wait_queue.sleep_until t.writers (fun () ->
             t.count < capacity t || not t.read_open);
         if not t.read_open then begin
           result := Error Errno.epipe;
           raise Stdlib.Exit
         end;
         let n = push t buf (pos + !written) (len - !written) in
         charge_op n;
         written := !written + n;
         ignore (Ostd.Wait_queue.wake_one t.readers);
         Pollable.publish t.rd_pollable Pollable.pollin
       done
     with Stdlib.Exit -> ());
    match !result with
    | Error _ as e when !written = 0 -> e
    | _ -> Ok !written
  end
