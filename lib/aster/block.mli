(** Block layer: bios, driver registration, and a 4 KiB buffer cache.

    File systems read and write through the cache (memory speed on hits);
    dirty blocks reach the device on [sync]/[sync_blocks] (fsync) or via
    background writeback. All buffers are untyped frames, as the DMA path
    requires (Inv. 6). *)

val block_size : int
val sectors_per_block : int

type op = Read | Write | Write_fua | Flush

type bio

val make_bio : op -> sector:int -> ?frame:Ostd.Frame.t -> len:int -> unit -> bio
(** [frame] carries the data for Read/Write/Write_fua; Flush takes none.
    The frame is borrowed for the bio's lifetime. A [Write_fua] is
    write-through: the device persists the sectors before completing. *)

val bio_status : bio -> int option
(** [None] while in flight; [Some 0] on success; [Some errno] on error. *)

val bio_op : bio -> op
val bio_sector : bio -> int
val bio_frame : bio -> Ostd.Frame.t option
val bio_len : bio -> int

val bio_span : bio -> int
(** The request span owning this bio (0 = none), captured at creation
    and inherited by clones across merges, batch splits and retries. *)

val note_issued : bio -> unit
(** Driver hook: the bio was pushed to the device (first push wins). *)

val note_dev_done : bio -> int64 -> unit
(** Driver hook: the device's completion timestamp, read back from the
    descriptor. Feeds the span's blk.service / blk.irq split. *)

val complete_bio : bio -> status:int -> unit
(** Called by the driver when the device finishes. *)

module type DRIVER = sig
  val capacity_sectors : unit -> int

  val submit : bio -> unit
  (** Begin servicing; completion arrives via [complete_bio]. *)

  val submit_many : bio list -> unit
  (** Scatter-gather: begin servicing a merged run of bios (same op,
      adjacent sectors, already sorted) as one descriptor chain with a
      single doorbell; the device completes the chain with one
      interrupt. Each bio still completes individually via
      [complete_bio]. *)

  val cancel : bio -> unit
  (** The block layer timed this bio out. The driver must stop waiting
      on it and quarantine any DMA buffers still exposed to the device,
      so a late completion cannot land in reused memory. *)
end

val register_driver : (module DRIVER) -> unit
val have_driver : unit -> bool
val capacity_sectors : unit -> int

val submit_and_wait : bio -> (unit, int) result
(** Sleep the current task until the bio completes, retrying on error or
    timeout with exponential backoff (deadline 8 ms doubling to 64 ms,
    up to 5 attempts). The caller's bio is completed exactly once with
    the final outcome; [Error errno] (EIO for a device that went silent)
    is returned once every attempt is exhausted. *)

val submit_batch : bio list -> unit
(** The plug/unplug request queue: sector-sort the bios, merge adjacent
    same-op requests into descriptor chains (up to 32 per chain), and
    issue each chain with one submission charge, one doorbell, and one
    completion interrupt, under a single shared deadline. On a mid-batch
    error or timeout the chain is split back into per-bio
    [submit_and_wait] attempts, preserving the single-bio retry and EIO
    semantics. Every bio is complete when this returns — callers inspect
    [bio_status]. With [blk_batching] off in the profile, degenerates to
    per-bio submission. Counters: [blk.merge] (bios saved a doorbell),
    [blk.batch], [blk.batch_split]. *)

(** {2 Buffer cache} *)

val read_block : int -> Ostd.Frame.t
(** The cached frame for a block, reading it from the device on a miss.
    The returned frame is owned by the cache — do not drop it. *)

val write_to_block : int -> off:int -> buf:bytes -> pos:int -> len:int -> unit
(** Write through the cache and mark dirty. A partial write of a block
    not yet cached reads it first (read-modify-write); a full-block write
    skips the read. *)

val read_from_block : int -> off:int -> buf:bytes -> pos:int -> len:int -> unit

val zero_block : int -> unit
(** Mark the block cached and zeroed without touching the device (fresh
    allocation). *)

val mark_dirty : int -> unit
val dirty_blocks : unit -> int
val cached_blocks : unit -> int

(** {2 Journal pinning}

    The write-ahead journal pins a block once it has logged it:
    writeback (background or sync) must not overwrite the block's home
    location until the journal record is durable and checkpointed.
    Pinned blocks the flusher meets are parked — removed from the
    writeback queue but kept dirty — and re-queued on [unpin]. *)

val pin : int -> unit
val unpin : int -> unit
val is_pinned : int -> bool

val write_block_fua : int -> (unit, int) result
(** Write one cached block with FUA (durable on return, bypassing the
    device's volatile cache) and mark it clean. Counts [blk.fua]. A
    block that is not cached is a no-op. *)

val flush_device : unit -> (unit, int) result
(** Issue a device flush barrier: everything the device acknowledged
    before this is durable when it completes. Counts [blk.flush]. *)

val write_through : int -> Bytes.t -> (unit, int) result
(** Write the given bytes to a block on the device without touching its
    cache entry (journal checkpoint of a frozen committed image while
    the cache holds newer bytes). Reaches the device's volatile cache
    only; follow with {!flush_device} for durability. *)

val prefetch_blocks : ?mark:bool -> int list -> unit
(** Readahead back end: batch-read the given blocks (misses only) into
    the cache as clean entries. Read failures are dropped silently —
    readahead is a hint; the demand read retries on its own. With [mark]
    (default), entries are tagged speculative: a later demand hit counts
    [blk.readahead.hit], and blocks issued here count
    [blk.readahead.issued]. [~mark:false] is the plug path — batching
    the demand range itself, counted under [blk.plug_read]. Demand reads
    that reach the device synchronously count [blk.readahead.miss]. *)

val drop_clean : unit -> int
(** Evict every clean cache entry (cold-cache benchmark phases); dirty
    blocks stay. Returns the number of entries dropped. *)

val sync : unit -> (unit, int) result
(** Write back every dirty block (journal-pinned blocks excepted) and
    issue a device flush. [Error errno] reports a flush failure or a
    sticky writeback error: background writeback cannot raise, so a
    block it had to drop after exhausting retries is recorded and
    surfaced at the next sync (errseq-style, consumed once reported
    on this legacy path — per-file observers use {!wb_check}). *)

val sync_blocks : int list -> (unit, int) result
(** Write back specific blocks (fsync of one file), then flush. Reports
    errors as [sync] does. *)

(** {2 Writeback error sequencing (errseq_t)} *)

val wb_errseq : unit -> int
(** Current writeback-error sequence; sample it when you start caring
    (e.g. at open(2)). *)

val wb_check : since:int -> (unit, int * int) result
(** Has a writeback error happened after [since]? [Error (seq, errno)]
    reports it along with the new sequence to remember — so every
    observer (each open file, plus the legacy sync(2) consumer) sees an
    error exactly once, independently of the others. *)

val verify_cache_against_device : unit -> int * int
(** Durability crosscheck: re-read every clean cached block from the
    device and byte-compare with the cache. Returns
    [(blocks_checked, mismatches)]; after a successful [sync] a non-zero
    mismatch count means data never reached stable storage. *)

val reset : unit -> unit
(** Forget the driver and drop the cache (new boot). *)
