(* A static web server on the full Asterinas stack: boots the kernel,
   starts mini-nginx inside it, and drives it from the host side of the
   virtio-net tap with an ApacheBench-style client.

     dune exec examples/web_server.exe *)

let () =
  let requests = 2000 in
  Printf.printf "booting asterinas (IOMMU on) and serving %d requests...\n%!" requests;
  let k = Apps.Runner.boot ~profile:Sim.Profile.asterinas in
  Apps.Libc.install_child_resolver ();
  let host = Aster.Kernel.attach_host k in
  Apps.Mini_nginx.spawn ~requests ~sizes:[ ("index.html", 4096); ("big.bin", 65536) ] ();
  let done_ = ref None in
  Apps.Ab.run ~host ~path:"/index.html" ~concurrency:32 ~requests ~on_done:(fun r ->
      done_ := Some r);
  Apps.Runner.run ();
  (match !done_ with
  | Some r ->
    Printf.printf "served %d requests in %.1f ms of virtual time: %.0f requests/s\n"
      r.Apps.Ab.requests (r.Apps.Ab.elapsed_us /. 1000.) r.Apps.Ab.rps
  | None -> print_endline "client did not finish");
  Printf.printf "guest NIC: %d packets sent, %d received; IOTLB hits %d misses %d\n"
    (Aster.Virtio_net_drv.tx_packets ())
    (Aster.Virtio_net_drv.rx_packets ())
    (Machine.Iommu.hits ()) (Machine.Iommu.misses ());
  Printf.printf "syscalls served: %d (top: %s)\n"
    (List.fold_left (fun a (_, c) -> a + c) 0 (Aster.Strace.top 100))
    (String.concat ", "
       (List.map (fun (n, c) -> Printf.sprintf "%s=%d" n c) (Aster.Strace.top 5)))
